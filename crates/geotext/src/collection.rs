//! [`ObjectCollection`]: the assembled geo-textual data set.
//!
//! A collection owns the objects, the corpus vocabulary, the spatial grid
//! index with per-cell inverted lists, and the object→road-node mapping.  It is
//! the query-time entry point that turns a set of query keywords plus a region
//! of interest into *node weights* — the `σ_v` values the LCMSR algorithms
//! consume.

use crate::error::Result;
use crate::grid::{CellId, GridIndex, DEFAULT_SHARD_COUNT};
use crate::mapping::map_points_to_nodes;
use crate::object::{GeoTextObject, ObjectId};
use crate::vocab::{TermId, Vocabulary};
use crate::vsm::QueryVector;
use lcmsr_roadnet::geo::Rect;
use lcmsr_roadnet::graph::RoadNetwork;
use lcmsr_roadnet::node::NodeId;
use std::collections::BTreeMap;

/// Default grid cell size in metres (roughly a city block neighbourhood).
pub const DEFAULT_CELL_SIZE: f64 = 500.0;

/// Per-node relevance weights for one query (the `σ_v` of the paper), together
/// with per-object scores for inspection.
#[derive(Debug, Clone, Default)]
pub struct NodeWeights {
    /// Relevance weight per node; only nodes with a positive weight appear.
    pub by_node: BTreeMap<NodeId, f64>,
    /// Relevance score per matching object.
    pub by_object: BTreeMap<ObjectId, f64>,
}

impl NodeWeights {
    /// Weight of a node (0 if it hosts no relevant object).
    pub fn weight(&self, node: NodeId) -> f64 {
        self.by_node.get(&node).copied().unwrap_or(0.0)
    }

    /// The largest node weight (`σ_max`), or 0 when no node is relevant.
    pub fn max_weight(&self) -> f64 {
        self.by_node.values().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Number of nodes with a positive weight.
    pub fn relevant_node_count(&self) -> usize {
        self.by_node.len()
    }

    /// Total weight over all relevant nodes.
    pub fn total_weight(&self) -> f64 {
        self.by_node.values().sum()
    }

    /// Whether no node is relevant to the query.
    pub fn is_empty(&self) -> bool {
        self.by_node.is_empty()
    }
}

/// A complete geo-textual data set bound to a road network.
#[derive(Debug, Clone)]
pub struct ObjectCollection {
    objects: Vec<GeoTextObject>,
    vocabulary: Vocabulary,
    grid: GridIndex,
    /// Node each object is mapped to, aligned with `objects`.
    object_nodes: Vec<NodeId>,
    /// Objects hosted by each node.
    node_objects: BTreeMap<NodeId, Vec<ObjectId>>,
    /// Position of each object id in `objects` (ids need not be dense).
    object_index: BTreeMap<ObjectId, usize>,
}

impl ObjectCollection {
    /// Builds a collection: registers every object in the vocabulary, inserts
    /// it into the grid index, and maps it to its nearest road-network node.
    ///
    /// Objects with empty descriptions or locations outside the network's
    /// bounding box (expanded by one cell) are skipped rather than rejected, so
    /// noisy synthetic or crawled data does not abort the build; the number of
    /// skipped objects is available via [`ObjectCollection::skipped_objects`].
    pub fn build(
        network: &RoadNetwork,
        objects: Vec<GeoTextObject>,
        cell_size: f64,
    ) -> Result<Self> {
        Self::build_with_workers(network, objects, cell_size, 1)
    }

    /// Like [`ObjectCollection::build`], filling the grid's column-band shards
    /// on up to `workers` scoped threads.  The vocabulary is registered by a
    /// sequential pass first (term ids depend on encounter order), then the
    /// shards — disjoint by construction — are indexed concurrently against
    /// the now-read-only vocabulary.  The resulting collection is
    /// bit-identical to a single-threaded build.
    pub fn build_with_workers(
        network: &RoadNetwork,
        objects: Vec<GeoTextObject>,
        cell_size: f64,
        workers: usize,
    ) -> Result<Self> {
        Self::build_sharded(network, objects, cell_size, DEFAULT_SHARD_COUNT, workers)
    }

    /// Like [`ObjectCollection::build_with_workers`], with an explicit grid
    /// shard count.  Sharding is a layout detail: every shard count produces
    /// bit-identical postings and scores (each object lives in exactly one
    /// cell, so per-shard score maps are key-disjoint and merge exactly);
    /// `tests/sharded_prepare.rs` holds this property under proptest.
    pub fn build_sharded(
        network: &RoadNetwork,
        objects: Vec<GeoTextObject>,
        cell_size: f64,
        shard_count: usize,
        workers: usize,
    ) -> Result<Self> {
        let extent = network
            .bounding_rect()
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0))
            .expanded(cell_size.max(1.0));
        let mut grid = GridIndex::new_sharded(extent, cell_size, shard_count)?;
        let mut vocabulary = Vocabulary::new();
        let mut kept: Vec<GeoTextObject> = Vec::with_capacity(objects.len());
        for o in objects {
            if o.is_empty() || !o.point.is_finite() || !extent.contains(&o.point) {
                continue;
            }
            vocabulary.register_document(o.terms.keys().map(String::as_str));
            kept.push(o);
        }
        grid.bulk_insert_preinterned(&vocabulary, &kept, workers)?;
        let points: Vec<_> = kept.iter().map(|o| o.point).collect();
        let object_nodes = if kept.is_empty() {
            Vec::new()
        } else {
            map_points_to_nodes(network, &points)
        };
        let mut node_objects: BTreeMap<NodeId, Vec<ObjectId>> = BTreeMap::new();
        let mut object_index = BTreeMap::new();
        for (i, o) in kept.iter().enumerate() {
            object_index.insert(o.id, i);
            node_objects.entry(object_nodes[i]).or_default().push(o.id);
        }
        Ok(ObjectCollection {
            objects: kept,
            vocabulary,
            grid,
            object_nodes,
            node_objects,
            object_index,
        })
    }

    /// Builds a collection with the default grid cell size.
    pub fn build_default(network: &RoadNetwork, objects: Vec<GeoTextObject>) -> Result<Self> {
        Self::build(network, objects, DEFAULT_CELL_SIZE)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the collection holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The indexed objects.
    pub fn objects(&self) -> &[GeoTextObject] {
        &self.objects
    }

    /// The corpus vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// The spatial grid index.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// Number of distinct keywords in the corpus.
    pub fn keyword_count(&self) -> usize {
        self.vocabulary.len()
    }

    /// The node an object is mapped to, if the object exists.
    pub fn node_of(&self, object: ObjectId) -> Option<NodeId> {
        self.object_index
            .get(&object)
            .map(|&i| self.object_nodes[i])
    }

    /// Objects hosted by a node.
    pub fn objects_at(&self, node: NodeId) -> &[ObjectId] {
        self.node_objects.get(&node).map_or(&[], Vec::as_slice)
    }

    /// An object by id.
    pub fn object(&self, id: ObjectId) -> Option<&GeoTextObject> {
        self.object_index.get(&id).map(|&i| &self.objects[i])
    }

    /// Builds the query vector for a set of keywords against this corpus.
    pub fn query_vector(&self, keywords: &[impl AsRef<str>]) -> QueryVector {
        QueryVector::new(&self.vocabulary, keywords)
    }

    /// Computes per-node relevance weights (`σ_v`) for a query restricted to
    /// the region of interest `Q.Λ` given by `rect`.
    ///
    /// Implementation follows the paper: the grid index retrieves the postings
    /// lists for the query keywords from the cells intersecting the rectangle
    /// (Equation 2), per-object scores are normalised by the query norm, objects
    /// outside the rectangle are discarded, and each object's score is added to
    /// the node it is mapped to.
    pub fn node_weights(&self, query: &QueryVector, rect: &Rect) -> NodeWeights {
        let mut weights = NodeWeights::default();
        self.node_weights_into(query, rect, &mut weights);
        weights
    }

    /// Like [`ObjectCollection::node_weights`], but writes into a caller-owned
    /// [`NodeWeights`].  Batched query engines
    /// score thousands of queries against the same collection; recycling the
    /// output avoids rebuilding both maps from scratch every time.
    pub fn node_weights_into(&self, query: &QueryVector, rect: &Rect, out: &mut NodeWeights) {
        self.node_weights_into_with_workers(query, rect, out, 1);
    }

    /// Like [`ObjectCollection::node_weights_into`], fanning the grid scoring
    /// out across up to `workers` threads (one per intersecting column-band
    /// shard at most).  Bit-identical to the sequential path — see
    /// [`GridIndex::accumulate_scores_in_rect_with_workers`].
    pub fn node_weights_into_with_workers(
        &self,
        query: &QueryVector,
        rect: &Rect,
        out: &mut NodeWeights,
        workers: usize,
    ) {
        out.by_node.clear();
        out.by_object.clear();
        if query.norm == 0.0 {
            return;
        }
        let query_terms: Vec<(TermId, f64)> = query
            .terms
            .iter()
            .filter_map(|t| t.id.map(|id| (id, t.weight)))
            .collect();
        // Accumulate in ascending object-id order: per-node weights are sums
        // of floating-point scores, and a deterministic summation order makes
        // repeated (and batched) runs of the same query bit-identical.  The
        // grid returns a BTreeMap, so its iteration order *is* that order.
        for (object_id, partial) in
            self.grid
                .accumulate_scores_in_rect_with_workers(rect, &query_terms, workers)
        {
            let Some(&idx) = self.object_index.get(&object_id) else {
                continue;
            };
            let object = &self.objects[idx];
            if !rect.contains(&object.point) {
                continue; // the cell overlapped Q.Λ but the object itself is outside
            }
            let score = partial / query.norm;
            if score <= 0.0 {
                continue;
            }
            out.by_object.insert(object_id, score);
            *out.by_node.entry(self.object_nodes[idx]).or_insert(0.0) += score;
        }
    }

    /// Delta variant of [`ObjectCollection::node_weights_into`] for an
    /// interactive session step: `prev` holds the weights of the same query
    /// vector over `old_rect`; only the grid cells that `new_rect` covers
    /// *beyond* `old_rect` are rescanned, and per-object scores surviving the
    /// pan (object inside both rects) are carried over unchanged.  Returns
    /// the number of cells rescanned.
    ///
    /// Bit-identical to a cold [`ObjectCollection::node_weights_into`] over
    /// `new_rect`: an object's Equation-2 partial accumulates entirely within
    /// its single grid cell, so per-object scores are rect-independent, and
    /// the per-node sums are rebuilt by iterating the merged object map in
    /// the same ascending-id order the cold pass uses.
    pub fn node_weights_delta_into(
        &self,
        query: &QueryVector,
        old_rect: &Rect,
        new_rect: &Rect,
        prev: &NodeWeights,
        out: &mut NodeWeights,
    ) -> usize {
        out.by_node.clear();
        out.by_object.clear();
        if query.norm == 0.0 {
            return 0;
        }
        // Survivors: per-object scores are independent of the rect (only the
        // inside-the-rect filter depends on it), so any previously scored
        // object still inside the new rect keeps its score bit-for-bit.
        for (&object_id, &score) in &prev.by_object {
            let Some(&idx) = self.object_index.get(&object_id) else {
                continue;
            };
            if new_rect.contains(&self.objects[idx].point) {
                out.by_object.insert(object_id, score);
            }
        }
        // Rescan: cells the new rect covers that the old rect did not fully
        // contain.  Fully-contained cells were already scored exhaustively
        // (every object of theirs passed the old inside-the-rect filter or
        // scored zero, which the cold pass also drops).
        let query_terms: Vec<(TermId, f64)> = query
            .terms
            .iter()
            .filter_map(|t| t.id.map(|id| (id, t.weight)))
            .collect();
        let fresh: Vec<CellId> = self
            .grid
            .cells_intersecting(new_rect)
            .into_iter()
            .filter(|&c| !old_rect.contains_rect(&self.grid.cell_rect(c)))
            .collect();
        let rescanned = fresh.len();
        for (object_id, partial) in self.grid.accumulate_scores_in_cells(&fresh, &query_terms) {
            let Some(&idx) = self.object_index.get(&object_id) else {
                continue;
            };
            if !new_rect.contains(&self.objects[idx].point) {
                continue;
            }
            let score = partial / query.norm;
            if score <= 0.0 {
                continue;
            }
            // An object both surviving and rescanned recomputes the identical
            // score, so overwriting is safe.
            out.by_object.insert(object_id, score);
        }
        // Rebuild per-node sums in ascending object-id order — the exact
        // summation order of the cold pass, so the float sums are identical.
        for (&object_id, &score) in &out.by_object {
            let Some(&idx) = self.object_index.get(&object_id) else {
                continue;
            };
            *out.by_node.entry(self.object_nodes[idx]).or_insert(0.0) += score;
        }
        rescanned
    }

    /// Convenience wrapper: computes node weights from raw keyword strings.
    pub fn node_weights_for_keywords(
        &self,
        keywords: &[impl AsRef<str>],
        rect: &Rect,
    ) -> NodeWeights {
        let q = self.query_vector(keywords);
        self.node_weights(&q, rect)
    }

    /// Reusing variant of [`ObjectCollection::node_weights_for_keywords`]
    /// (see [`ObjectCollection::node_weights_into`]).
    pub fn node_weights_for_keywords_into(
        &self,
        keywords: &[impl AsRef<str>],
        rect: &Rect,
        out: &mut NodeWeights,
    ) {
        let q = self.query_vector(keywords);
        self.node_weights_into(&q, rect, out);
    }

    /// The alternative scoring strategy of Section 2 of the paper: an object's
    /// score is its rating/popularity when it matches at least one query
    /// keyword, and zero otherwise, so the region score represents the
    /// popularity of a relevant region.  Objects without a rating count as
    /// `default_rating`.
    pub fn node_weights_by_rating(
        &self,
        keywords: &[impl AsRef<str>],
        rect: &Rect,
        default_rating: f64,
    ) -> NodeWeights {
        let mut weights = NodeWeights::default();
        let normalized: Vec<String> = keywords
            .iter()
            .map(|k| crate::object::normalize_term(k.as_ref()))
            .filter(|k| !k.is_empty())
            .collect();
        if normalized.is_empty() {
            return weights;
        }
        for (i, object) in self.objects.iter().enumerate() {
            if !rect.contains(&object.point) {
                continue;
            }
            let matches = normalized.iter().any(|k| object.contains_term(k));
            if !matches {
                continue;
            }
            let score = object.rating.unwrap_or(default_rating).max(0.0);
            if score <= 0.0 {
                continue;
            }
            weights.by_object.insert(object.id, score);
            *weights.by_node.entry(self.object_nodes[i]).or_insert(0.0) += score;
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmsr_roadnet::builder::GraphBuilder;
    use lcmsr_roadnet::geo::Point;

    fn network_and_objects() -> (RoadNetwork, Vec<GeoTextObject>) {
        // A 5-node line network with 100 m segments.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 100.0).unwrap();
        }
        let network = b.build().unwrap();
        let objects = vec![
            GeoTextObject::from_keywords(0u64, Point::new(5.0, 5.0), ["restaurant", "italian"]),
            GeoTextObject::from_keywords(1u64, Point::new(102.0, -3.0), ["restaurant", "pizza"]),
            GeoTextObject::from_keywords(2u64, Point::new(108.0, 4.0), ["cafe"]),
            GeoTextObject::from_keywords(3u64, Point::new(395.0, 0.0), ["restaurant"]),
            GeoTextObject::from_keywords(4u64, Point::new(250.0, 2.0), Vec::<String>::new()),
            GeoTextObject::from_keywords(5u64, Point::new(9999.0, 9999.0), ["restaurant"]),
        ];
        (network, objects)
    }

    #[test]
    fn build_skips_unusable_objects() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        // The empty object and the far-away object are skipped.
        assert_eq!(coll.len(), 4);
        assert!(!coll.is_empty());
        assert_eq!(coll.keyword_count(), 4);
        assert!(coll.object(ObjectId(5)).is_none());
        assert!(coll.object(ObjectId(0)).is_some());
    }

    #[test]
    fn objects_map_to_nearest_nodes() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        assert_eq!(coll.node_of(ObjectId(0)), Some(NodeId(0)));
        assert_eq!(coll.node_of(ObjectId(1)), Some(NodeId(1)));
        assert_eq!(coll.node_of(ObjectId(2)), Some(NodeId(1)));
        assert_eq!(coll.node_of(ObjectId(3)), Some(NodeId(4)));
        assert_eq!(coll.objects_at(NodeId(1)).len(), 2);
        assert!(coll.objects_at(NodeId(2)).is_empty());
    }

    #[test]
    fn node_weights_sum_object_scores_per_node() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        let rect = network.bounding_rect().unwrap().expanded(50.0);
        let q = coll.query_vector(&["restaurant"]);
        let w = coll.node_weights(&q, &rect);
        assert_eq!(w.relevant_node_count(), 3); // nodes 0, 1, 4
        assert!(w.weight(NodeId(0)) > 0.0);
        assert!(w.weight(NodeId(1)) > 0.0);
        assert!(w.weight(NodeId(4)) > 0.0);
        assert_eq!(w.weight(NodeId(2)), 0.0);
        // Object 3 has the single keyword "restaurant" → its score is maximal,
        // so node 4 carries the largest weight among single-object nodes.
        assert!(w.weight(NodeId(4)) >= w.weight(NodeId(0)));
        assert!(w.max_weight() > 0.0);
        assert!((w.total_weight() - w.by_node.values().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn node_weights_respect_query_rectangle() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        // Rectangle covering only the first two nodes' surroundings.
        let rect = Rect::new(-20.0, -20.0, 150.0, 20.0);
        let w = coll.node_weights_for_keywords(&["restaurant"], &rect);
        assert!(w.weight(NodeId(0)) > 0.0);
        assert!(w.weight(NodeId(1)) > 0.0);
        assert_eq!(
            w.weight(NodeId(4)),
            0.0,
            "object outside Q.Λ must not count"
        );
    }

    #[test]
    fn irrelevant_or_unknown_queries_give_empty_weights() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        let rect = network.bounding_rect().unwrap().expanded(50.0);
        let w = coll.node_weights_for_keywords(&["spaceship"], &rect);
        assert!(w.is_empty());
        assert_eq!(w.max_weight(), 0.0);
        let w = coll.node_weights_for_keywords(&Vec::<String>::new(), &rect);
        assert!(w.is_empty());
    }

    #[test]
    fn multi_keyword_queries_score_multi_matching_objects_higher() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        let rect = network.bounding_rect().unwrap().expanded(50.0);
        let w = coll.node_weights_for_keywords(&["restaurant", "pizza"], &rect);
        // Object 1 (restaurant+pizza) on node 1 scores higher than object 0
        // (restaurant+italian) on node 0.
        let s1 = w.by_object.get(&ObjectId(1)).copied().unwrap_or(0.0);
        let s0 = w.by_object.get(&ObjectId(0)).copied().unwrap_or(0.0);
        assert!(s1 > s0);
    }

    #[test]
    fn rating_based_scoring_uses_ratings_of_matching_objects() {
        let (network, mut objects) = network_and_objects();
        // Give two relevant objects explicit ratings.
        objects[0] = objects[0].clone().with_rating(4.5); // restaurant at node 0
        objects[3] = objects[3].clone().with_rating(2.0); // restaurant at node 4
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        let rect = network.bounding_rect().unwrap().expanded(50.0);
        let w = coll.node_weights_by_rating(&["restaurant"], &rect, 1.0);
        assert!((w.weight(NodeId(0)) - 4.5).abs() < 1e-12);
        assert!((w.weight(NodeId(4)) - 2.0).abs() < 1e-12);
        // Object 1 (restaurant, no rating) falls back to the default rating.
        assert!((w.weight(NodeId(1)) - 1.0).abs() < 1e-12);
        // The cafe does not match and contributes nothing.
        assert!(!w.by_object.contains_key(&ObjectId(2)));
        // No keywords → empty; unknown keywords → empty.
        assert!(coll
            .node_weights_by_rating(&Vec::<String>::new(), &rect, 1.0)
            .is_empty());
        assert!(coll
            .node_weights_by_rating(&["spaceship"], &rect, 1.0)
            .is_empty());
    }

    #[test]
    fn reused_node_weights_match_fresh_ones() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build(&network, objects, 200.0).unwrap();
        let rect = network.bounding_rect().unwrap().expanded(50.0);
        let mut reused = NodeWeights::default();
        for keywords in [vec!["restaurant"], vec!["cafe", "pizza"], vec!["spaceship"]] {
            let fresh = coll.node_weights_for_keywords(&keywords, &rect);
            coll.node_weights_for_keywords_into(&keywords, &rect, &mut reused);
            assert_eq!(fresh.by_node, reused.by_node);
            assert_eq!(fresh.by_object, reused.by_object);
        }
        // Stale entries from a previous query never leak into the next one.
        coll.node_weights_for_keywords_into(&["restaurant"], &rect, &mut reused);
        coll.node_weights_for_keywords_into(&["spaceship"], &rect, &mut reused);
        assert!(reused.is_empty());
    }

    #[test]
    fn parallel_build_and_scoring_match_the_sequential_path() {
        let (network, objects) = network_and_objects();
        let sequential = ObjectCollection::build(&network, objects.clone(), 200.0).unwrap();
        let rect = network.bounding_rect().unwrap().expanded(50.0);
        let q = sequential.query_vector(&["restaurant", "pizza"]);
        let reference = sequential.node_weights(&q, &rect);
        for workers in [2usize, 4, 7] {
            let parallel =
                ObjectCollection::build_with_workers(&network, objects.clone(), 200.0, workers)
                    .unwrap();
            assert_eq!(parallel.len(), sequential.len());
            assert_eq!(parallel.keyword_count(), sequential.keyword_count());
            let mut w = NodeWeights::default();
            parallel.node_weights_into_with_workers(&q, &rect, &mut w, workers);
            assert_eq!(w.by_node.len(), reference.by_node.len());
            for ((na, sa), (nb, sb)) in reference.by_node.iter().zip(&w.by_node) {
                assert_eq!(na, nb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "workers={workers} node={na:?}");
            }
            assert_eq!(w.by_object, reference.by_object);
        }
    }

    #[test]
    fn delta_weights_are_bit_identical_to_cold_weights() {
        let (network, objects) = network_and_objects();
        // A small cell size so pans genuinely change the cell cover.
        let coll = ObjectCollection::build(&network, objects, 60.0).unwrap();
        let q = coll.query_vector(&["restaurant", "pizza"]);
        // A pan/zoom trace of overlapping rects (plus one disjoint jump).
        let rects = [
            Rect::new(-20.0, -20.0, 150.0, 20.0),
            Rect::new(30.0, -20.0, 200.0, 25.0),  // pan right
            Rect::new(-10.0, -30.0, 420.0, 30.0), // zoom out
            Rect::new(80.0, -5.0, 130.0, 10.0),   // zoom in
            Rect::new(300.0, -20.0, 420.0, 20.0), // disjoint-ish jump
        ];
        let mut prev_rect = rects[0];
        let mut prev = coll.node_weights(&q, &prev_rect);
        for rect in &rects[1..] {
            let cold = coll.node_weights(&q, rect);
            let mut delta = NodeWeights::default();
            let rescanned = coll.node_weights_delta_into(&q, &prev_rect, rect, &prev, &mut delta);
            assert!(rescanned <= coll.grid().cells_intersecting(rect).len());
            assert_eq!(cold.by_object.len(), delta.by_object.len(), "rect={rect:?}");
            for ((oa, sa), (ob, sb)) in cold.by_object.iter().zip(&delta.by_object) {
                assert_eq!(oa, ob);
                assert_eq!(sa.to_bits(), sb.to_bits(), "rect={rect:?} obj={oa:?}");
            }
            assert_eq!(cold.by_node.len(), delta.by_node.len());
            for ((na, sa), (nb, sb)) in cold.by_node.iter().zip(&delta.by_node) {
                assert_eq!(na, nb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "rect={rect:?} node={na:?}");
            }
            prev_rect = *rect;
            prev = cold;
        }
        // A fully-contained re-query rescans only boundary cells; an
        // identical rect rescans only the cells the rect does not fully
        // contain (possibly zero).
        let mut same = NodeWeights::default();
        coll.node_weights_delta_into(&q, &prev_rect, &prev_rect, &prev, &mut same);
        assert_eq!(same.by_object, prev.by_object);
        // An unknown-keyword query yields empty output either way.
        let empty_q = coll.query_vector(&["spaceship"]);
        let mut out = NodeWeights::default();
        let empty_prev = NodeWeights::default();
        coll.node_weights_delta_into(&empty_q, &rects[0], &rects[1], &empty_prev, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn build_default_uses_default_cell_size() {
        let (network, objects) = network_and_objects();
        let coll = ObjectCollection::build_default(&network, objects).unwrap();
        assert!(coll.grid().cell_size() == DEFAULT_CELL_SIZE);
        assert_eq!(coll.len(), 4);
    }
}
