//! Mapping geo-textual objects onto road-network nodes.
//!
//! The paper maps each crawled object to its nearest node on the road network
//! ("we map each object to its nearest node on the road network").  For large
//! data sets a linear scan per object is too slow, so [`NodeLocator`] buckets
//! node positions in a coarse spatial hash and answers nearest-node queries by
//! expanding rings of buckets around the query point.

use lcmsr_roadnet::geo::{Point, Rect};
use lcmsr_roadnet::graph::RoadNetwork;
use lcmsr_roadnet::node::NodeId;
use std::collections::BTreeMap;

/// Spatial hash over the nodes of a road network supporting nearest-node queries.
#[derive(Debug, Clone)]
pub struct NodeLocator {
    cell_size: f64,
    extent: Rect,
    cols: i64,
    rows: i64,
    buckets: BTreeMap<(i64, i64), Vec<NodeId>>,
    points: Vec<Point>,
}

impl NodeLocator {
    /// Builds a locator for all nodes of `network`.  `cell_size` controls the
    /// bucket granularity; a value close to the average road-segment length
    /// works well.
    pub fn new(network: &RoadNetwork, cell_size: f64) -> Self {
        let cell_size = if cell_size.is_finite() && cell_size > 0.0 {
            cell_size
        } else {
            100.0
        };
        let extent = network
            .bounding_rect()
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0));
        let cols = ((extent.width() / cell_size).ceil() as i64).max(1);
        let rows = ((extent.height() / cell_size).ceil() as i64).max(1);
        let mut buckets: BTreeMap<(i64, i64), Vec<NodeId>> = BTreeMap::new();
        let mut points = Vec::with_capacity(network.node_count());
        for n in network.nodes() {
            points.push(n.point);
            let key = Self::bucket_of(&extent, cell_size, cols, rows, &n.point);
            buckets.entry(key).or_default().push(n.id);
        }
        NodeLocator {
            cell_size,
            extent,
            cols,
            rows,
            buckets,
            points,
        }
    }

    fn bucket_of(extent: &Rect, cell_size: f64, cols: i64, rows: i64, p: &Point) -> (i64, i64) {
        let col = (((p.x - extent.min_x) / cell_size).floor() as i64).clamp(0, cols - 1);
        let row = (((p.y - extent.min_y) / cell_size).floor() as i64).clamp(0, rows - 1);
        (col, row)
    }

    /// Number of nodes indexed.
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Finds the node nearest to `p` (Euclidean), or `None` for an empty network.
    ///
    /// The search expands square rings of buckets around `p` until a candidate
    /// is found whose distance is no larger than the inner radius of the next
    /// unexplored ring, which guarantees the true nearest node is returned.
    pub fn nearest(&self, p: &Point) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        let center = Self::bucket_of(&self.extent, self.cell_size, self.cols, self.rows, p);
        let max_ring = (self.cols.max(self.rows)) + 1;
        let mut best: Option<(NodeId, f64)> = None;
        for ring in 0..=max_ring {
            // Scan the ring of buckets at Chebyshev distance `ring` from the centre.
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // interior already scanned in earlier rings
                    }
                    let key = (center.0 + dx, center.1 + dy);
                    if key.0 < 0 || key.1 < 0 || key.0 >= self.cols || key.1 >= self.rows {
                        continue;
                    }
                    if let Some(ids) = self.buckets.get(&key) {
                        for &id in ids {
                            let d = self.points[id.index()].distance_sq(p);
                            if best.map_or(true, |(_, bd)| d < bd) {
                                best = Some((id, d));
                            }
                        }
                    }
                }
            }
            if let Some((_, best_sq)) = best {
                // If the best candidate is closer than the nearest possible point
                // in the next ring, we are done.
                let safe_radius = ring as f64 * self.cell_size;
                if best_sq.sqrt() <= safe_radius {
                    break;
                }
            }
        }
        best.map(|(id, _)| id)
    }
}

/// Maps every object location to its nearest network node.
///
/// Returns a vector aligned with `object_points`: entry `i` is the node the
/// `i`-th point maps to.  Panics only if the network is empty.
pub fn map_points_to_nodes(network: &RoadNetwork, object_points: &[Point]) -> Vec<NodeId> {
    assert!(
        network.node_count() > 0,
        "cannot map objects onto an empty road network"
    );
    let avg_len = if network.edge_count() > 0 {
        network.total_length() / network.edge_count() as f64
    } else {
        100.0
    };
    let locator = NodeLocator::new(network, avg_len.max(10.0));
    object_points
        .iter()
        .map(|p| locator.nearest(p).expect("network is non-empty"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmsr_roadnet::builder::GraphBuilder;

    fn grid_network(n: usize, spacing: f64) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_edge(ids[i], ids[i + 1], spacing).unwrap();
                }
                if y + 1 < n {
                    b.add_edge(ids[i], ids[i + n], spacing).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn locator_agrees_with_linear_scan() {
        let g = grid_network(8, 50.0);
        let locator = NodeLocator::new(&g, 60.0);
        assert_eq!(locator.node_count(), 64);
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(351.0, 349.0),
            Point::new(123.4, 222.2),
            Point::new(-50.0, -50.0),
            Point::new(1000.0, 1000.0),
            Point::new(175.0, 25.0),
        ];
        for p in &probes {
            let expected = g.nearest_node(p).unwrap();
            let got = locator.nearest(p).unwrap();
            let d_expected = g.point(expected).distance(p);
            let d_got = g.point(got).distance(p);
            assert!(
                (d_expected - d_got).abs() < 1e-9,
                "probe {p:?}: locator {got} at {d_got}, expected {expected} at {d_expected}"
            );
        }
    }

    #[test]
    fn locator_handles_degenerate_cell_size() {
        let g = grid_network(3, 10.0);
        let locator = NodeLocator::new(&g, 0.0); // falls back to a sane default
        assert!(locator.nearest(&Point::new(5.0, 5.0)).is_some());
        let locator = NodeLocator::new(&g, f64::NAN);
        assert!(locator.nearest(&Point::new(5.0, 5.0)).is_some());
    }

    #[test]
    fn map_points_aligns_with_input_order() {
        let g = grid_network(4, 100.0);
        let pts = vec![
            Point::new(10.0, 10.0),
            Point::new(290.0, 290.0),
            Point::new(150.0, 0.0),
        ];
        let mapping = map_points_to_nodes(&g, &pts);
        assert_eq!(mapping.len(), 3);
        assert_eq!(mapping[0], g.nearest_node(&pts[0]).unwrap());
        assert_eq!(mapping[1], g.nearest_node(&pts[1]).unwrap());
        // A point equidistant from two nodes maps to one of them.
        let d = g.point(mapping[2]).distance(&pts[2]);
        assert!((d - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty road network")]
    fn mapping_onto_empty_network_panics() {
        let g = GraphBuilder::new().build().unwrap();
        let _ = map_points_to_nodes(&g, &[Point::new(0.0, 0.0)]);
    }

    #[test]
    fn proptest_style_randomised_agreement() {
        // Deterministic pseudo-random probes over a non-uniform network.
        let mut b = GraphBuilder::new();
        let coords = [
            (0.0, 0.0),
            (13.0, 94.0),
            (205.0, 33.0),
            (87.0, 187.0),
            (300.0, 300.0),
            (150.0, 150.0),
            (40.0, 260.0),
            (270.0, 120.0),
        ];
        let ids: Vec<NodeId> = coords
            .iter()
            .map(|&(x, y)| b.add_node(Point::new(x, y)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge_euclidean(w[0], w[1]).unwrap();
        }
        let g = b.build().unwrap();
        let locator = NodeLocator::new(&g, 75.0);
        let mut state = 12345u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = (state >> 20) as f64 % 400.0 - 50.0;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = (state >> 20) as f64 % 400.0 - 50.0;
            let p = Point::new(x, y);
            let expected_d = g.point(g.nearest_node(&p).unwrap()).distance(&p);
            let got_d = g.point(locator.nearest(&p).unwrap()).distance(&p);
            assert!((expected_d - got_d).abs() < 1e-9);
        }
    }
}
