//! The vector-space relevance model of Section 3 (Equations 1 and 2).
//!
//! For an object `o` and query `Q`:
//!
//! ```text
//! σ(o.ψ, Q.ψ) = Σ_{t ∈ Q.ψ ∩ o.ψ}  w_{Q.ψ,t} · w_{o.ψ,t} / (W_{Q.ψ} · W_{o.ψ})
//!
//! w_{Q.ψ,t} = ln(1 + |D| / f_t)           (query-side IDF)
//! w_{o.ψ,t} = 1 + ln(tf_{t,o.ψ})          (object-side TF)
//! W_{Q.ψ}   = sqrt(Σ_t w_{Q.ψ,t}²)        (query norm)
//! W_{o.ψ}   = sqrt(Σ_t w_{o.ψ,t}²)        (object norm over all of o's terms)
//! ```
//!
//! Following Equation 2, each posting stores the precomputed
//! `wto(t) = w_{o.ψ,t} / W_{o.ψ}`, so at query time the score is
//! `σ(o.ψ, Q.ψ) = (1 / W_{Q.ψ}) Σ_{t ∈ Q.ψ ∩ o.ψ} w_{Q.ψ,t} · wto(t)`.

use crate::object::GeoTextObject;
use crate::vocab::{TermId, Vocabulary};
use serde::{Deserialize, Serialize};

/// Object-side TF weight: `w_{o.ψ,t} = 1 + ln(tf)` (0 when the term is absent).
pub fn tf_weight(tf: u32) -> f64 {
    if tf == 0 {
        0.0
    } else {
        1.0 + (tf as f64).ln()
    }
}

/// Object norm `W_{o.ψ}` over all terms of the object's description.
pub fn object_norm(object: &GeoTextObject) -> f64 {
    object
        .terms
        .values()
        .map(|&tf| tf_weight(tf).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Precomputed per-term weight of an object: `wto(t) = w_{o.ψ,t} / W_{o.ψ}`.
///
/// Returns 0 for terms the object does not contain or for empty objects.
pub fn object_term_weight(object: &GeoTextObject, term: &str) -> f64 {
    let norm = object_norm(object);
    if norm == 0.0 {
        return 0.0;
    }
    tf_weight(object.term_frequency(term)) / norm
}

/// A parsed query with precomputed IDF weights and norm (`W_{Q.ψ}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryVector {
    /// Distinct query terms with their ids (if present in the vocabulary) and
    /// IDF weights `w_{Q.ψ,t}`.
    pub terms: Vec<QueryTerm>,
    /// Query norm `W_{Q.ψ}`.
    pub norm: f64,
}

/// One term of a query vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTerm {
    /// The normalised term string.
    pub text: String,
    /// Interned id, when the corpus has seen the term.
    pub id: Option<TermId>,
    /// IDF weight `w_{Q.ψ,t}`; zero for unseen terms.
    pub weight: f64,
}

impl QueryVector {
    /// Builds a query vector for the given keywords against a vocabulary.
    ///
    /// Duplicate keywords are collapsed; terms that no object contains get a
    /// zero weight (they cannot contribute to any object's score).
    pub fn new(vocabulary: &Vocabulary, keywords: &[impl AsRef<str>]) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        let mut terms = Vec::new();
        for kw in keywords {
            let norm = crate::object::normalize_term(kw.as_ref());
            if norm.is_empty() || !seen.insert(norm.clone()) {
                continue;
            }
            let id = vocabulary.lookup(&norm);
            let weight = id.map_or(0.0, |t| vocabulary.idf(t));
            terms.push(QueryTerm {
                text: norm,
                id,
                weight,
            });
        }
        let norm = terms
            .iter()
            .map(|t| t.weight * t.weight)
            .sum::<f64>()
            .sqrt();
        QueryVector { terms, norm }
    }

    /// Number of distinct query terms (including unseen ones).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no usable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Ids of the query terms that exist in the vocabulary.
    pub fn known_term_ids(&self) -> Vec<TermId> {
        self.terms.iter().filter_map(|t| t.id).collect()
    }

    /// Scores an object against this query using Equation 1 directly
    /// (recomputing the object-side weights); used as the reference
    /// implementation that index-based scoring is tested against.
    pub fn score_object(&self, object: &GeoTextObject) -> f64 {
        if self.norm == 0.0 {
            return 0.0;
        }
        let obj_norm = object_norm(object);
        if obj_norm == 0.0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for qt in &self.terms {
            let tf = object.term_frequency(&qt.text);
            if tf > 0 {
                sum += qt.weight * tf_weight(tf) / obj_norm;
            }
        }
        sum / self.norm
    }

    /// Scores an object given a precomputed `wto(t)` lookup, mirroring
    /// Equation 2: `σ = (1 / W_{Q.ψ}) Σ w_{Q.ψ,t} · wto(t)`.
    pub fn score_from_postings(&self, mut wto: impl FnMut(&str) -> Option<f64>) -> f64 {
        if self.norm == 0.0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for qt in &self.terms {
            if let Some(w) = wto(&qt.text) {
                sum += qt.weight * w;
            }
        }
        sum / self.norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmsr_roadnet::geo::Point;

    fn corpus() -> (Vocabulary, Vec<GeoTextObject>) {
        let mut vocab = Vocabulary::new();
        let objects = vec![
            GeoTextObject::from_keywords(0u64, Point::new(0.0, 0.0), ["restaurant", "italian"]),
            GeoTextObject::from_keywords(
                1u64,
                Point::new(1.0, 0.0),
                ["restaurant", "pizza", "pizza"],
            ),
            GeoTextObject::from_keywords(2u64, Point::new(2.0, 0.0), ["cafe", "coffee"]),
            GeoTextObject::from_keywords(3u64, Point::new(3.0, 0.0), ["museum"]),
        ];
        for o in &objects {
            vocab.register_document(o.terms.keys().map(String::as_str));
        }
        (vocab, objects)
    }

    #[test]
    fn tf_weight_is_one_plus_log() {
        assert_eq!(tf_weight(0), 0.0);
        assert_eq!(tf_weight(1), 1.0);
        assert!((tf_weight(2) - (1.0 + 2.0f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn object_norm_and_term_weight() {
        let o = GeoTextObject::from_keywords(0u64, Point::new(0.0, 0.0), ["a", "b", "b"]);
        let expected_norm = (1.0f64 + (1.0 + 2.0f64.ln()).powi(2)).sqrt();
        assert!((object_norm(&o) - expected_norm).abs() < 1e-12);
        assert!((object_term_weight(&o, "a") - 1.0 / expected_norm).abs() < 1e-12);
        assert_eq!(object_term_weight(&o, "zzz"), 0.0);
        let empty = GeoTextObject::from_keywords(1u64, Point::new(0.0, 0.0), Vec::<String>::new());
        assert_eq!(object_term_weight(&empty, "a"), 0.0);
    }

    #[test]
    fn query_vector_dedupes_and_weights_terms() {
        let (vocab, _) = corpus();
        let q = QueryVector::new(&vocab, &["restaurant", "Restaurant", "pizza"]);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.known_term_ids().len(), 2);
        // restaurant appears in 2 of 4 docs, pizza in 1 → pizza has higher idf.
        let w_rest = q
            .terms
            .iter()
            .find(|t| t.text == "restaurant")
            .unwrap()
            .weight;
        let w_pizza = q.terms.iter().find(|t| t.text == "pizza").unwrap().weight;
        assert!(w_pizza > w_rest);
        assert!((q.norm - (w_rest * w_rest + w_pizza * w_pizza).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn unseen_query_terms_score_zero() {
        let (vocab, objects) = corpus();
        let q = QueryVector::new(&vocab, &["spaceship"]);
        assert_eq!(q.norm, 0.0);
        for o in &objects {
            assert_eq!(q.score_object(o), 0.0);
        }
    }

    #[test]
    fn relevant_objects_score_higher() {
        let (vocab, objects) = corpus();
        let q = QueryVector::new(&vocab, &["restaurant", "pizza"]);
        let s0 = q.score_object(&objects[0]); // restaurant italian
        let s1 = q.score_object(&objects[1]); // restaurant pizza pizza
        let s2 = q.score_object(&objects[2]); // cafe coffee
        let s3 = q.score_object(&objects[3]); // museum
        assert!(s1 > s0, "object matching both terms should score highest");
        assert!(s0 > 0.0);
        assert_eq!(s2, 0.0);
        assert_eq!(s3, 0.0);
        // Scores from the cosine model stay within [0, 1] numerically.
        assert!(s1 <= 1.0 + 1e-9);
    }

    #[test]
    fn equation2_matches_equation1() {
        let (vocab, objects) = corpus();
        let q = QueryVector::new(&vocab, &["restaurant", "pizza", "cafe"]);
        for o in &objects {
            let direct = q.score_object(o);
            let via_postings = q.score_from_postings(|term| {
                let w = object_term_weight(o, term);
                if w > 0.0 {
                    Some(w)
                } else {
                    None
                }
            });
            assert!(
                (direct - via_postings).abs() < 1e-12,
                "object {:?}: {} vs {}",
                o.id,
                direct,
                via_postings
            );
        }
    }

    #[test]
    fn empty_query_is_harmless() {
        let (vocab, objects) = corpus();
        let q = QueryVector::new(&vocab, &Vec::<String>::new());
        assert!(q.is_empty());
        assert_eq!(q.score_object(&objects[0]), 0.0);
    }
}
