//! A paged B⁺-tree.
//!
//! The paper stores each grid cell's inverted lists in a disk-based B⁺-tree
//! ("The inverted lists may not fit in memory, and we use a disk-based B+-tree
//! to index them for each grid cell").  This module implements the same
//! structure as an explicitly paged tree: nodes live in a page table indexed by
//! [`PageId`], leaves are chained for range scans, and the tree tracks how many
//! pages were touched by each operation so experiments can report simulated
//! I/O.  Pages are kept in memory here (the machine substitute for a disk
//! file), but the layout and access pattern match an on-disk implementation.
//!
//! Only insertion, point lookup, range scans and full scans are provided —
//! exactly the operations the LCMSR indexing layer needs.

use crate::error::{GeoTextError, Result};
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a page in the page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId(pub u32);

impl PageId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Default number of entries per page; chosen so that a page of term-id keys
/// and postings-pointer values is in the ballpark of a 4 KiB disk page.
pub const DEFAULT_PAGE_CAPACITY: usize = 64;

#[derive(Debug, Clone)]
enum Page<K, V> {
    Internal {
        /// Separator keys; `children.len() == keys.len() + 1`.
        keys: Vec<K>,
        children: Vec<PageId>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: Option<PageId>,
    },
}

/// A paged B⁺-tree mapping ordered keys to values.
///
/// `K` must be orderable and cloneable; `V` cloneable.  Duplicate keys are not
/// allowed: inserting an existing key replaces its value.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    pages: Vec<Page<K, V>>,
    root: PageId,
    len: usize,
    capacity: usize,
    /// Number of pages read since construction (an atomic so reads can be
    /// counted on `&self` methods — and across threads — mimicking a
    /// buffer-manager counter).
    pages_read: AtomicU64,
    /// Number of pages written (created or modified) since construction.
    pages_written: u64,
}

impl<K: Clone, V: Clone> Clone for BPlusTree<K, V> {
    fn clone(&self) -> Self {
        BPlusTree {
            pages: self.pages.clone(),
            root: self.root,
            len: self.len,
            capacity: self.capacity,
            pages_read: AtomicU64::new(self.pages_read.load(Ordering::Relaxed)),
            pages_written: self.pages_written,
        }
    }
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// Creates an empty tree with the default page capacity.
    pub fn new() -> Self {
        Self::with_page_capacity(DEFAULT_PAGE_CAPACITY).expect("default capacity is valid")
    }

    /// Creates an empty tree whose pages hold at most `capacity` entries.
    ///
    /// The capacity must be at least 4 so that splits produce non-degenerate pages.
    pub fn with_page_capacity(capacity: usize) -> Result<Self> {
        if capacity < 4 {
            return Err(GeoTextError::InvalidPageSize { capacity });
        }
        let pages = vec![Page::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: None,
        }];
        Ok(BPlusTree {
            pages,
            root: PageId(0),
            len: 0,
            capacity,
            pages_read: AtomicU64::new(0),
            pages_written: 1,
        })
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages allocated (leaves + internal nodes).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut page = self.root;
        loop {
            match &self.pages[page.index()] {
                Page::Internal { children, .. } => {
                    page = children[0];
                    h += 1;
                }
                Page::Leaf { .. } => return h,
            }
        }
    }

    /// Total pages read by lookups/scans since construction (simulated I/O).
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Total pages written by inserts since construction (simulated I/O).
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    fn note_read(&self) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Finds the leaf page that should contain `key`, recording the root-to-leaf path.
    fn find_leaf(&self, key: &K) -> (PageId, Vec<PageId>) {
        let mut path = Vec::new();
        let mut page = self.root;
        loop {
            self.note_read();
            match &self.pages[page.index()] {
                Page::Internal { keys, children } => {
                    path.push(page);
                    let idx = keys.partition_point(|k| k <= key);
                    page = children[idx];
                }
                Page::Leaf { .. } => return (page, path),
            }
        }
    }

    /// Returns the value stored for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let (leaf, _) = self.find_leaf(key);
        match &self.pages[leaf.index()] {
            Page::Leaf { keys, values, .. } => keys.binary_search(key).ok().map(|i| &values[i]),
            Page::Internal { .. } => unreachable!("find_leaf returns a leaf"),
        }
    }

    /// Whether the tree contains `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`, replacing and returning any previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (leaf, path) = self.find_leaf(&key);
        self.pages_written += 1;
        let (old, split) = match &mut self.pages[leaf.index()] {
            Page::Leaf { keys, values, next } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut values[i], value);
                        (Some(old), None)
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        if keys.len() > self.capacity {
                            // Split the leaf in half.
                            let mid = keys.len() / 2;
                            let right_keys = keys.split_off(mid);
                            let right_values = values.split_off(mid);
                            let sep = right_keys[0].clone();
                            let old_next = *next;
                            (None, Some((sep, right_keys, right_values, old_next)))
                        } else {
                            (None, None)
                        }
                    }
                }
            }
            Page::Internal { .. } => unreachable!("find_leaf returns a leaf"),
        };
        if old.is_none() {
            self.len += 1;
        }
        if let Some((sep, right_keys, right_values, old_next)) = split {
            let right_id = PageId(self.pages.len() as u32);
            self.pages.push(Page::Leaf {
                keys: right_keys,
                values: right_values,
                next: old_next,
            });
            self.pages_written += 1;
            if let Page::Leaf { next, .. } = &mut self.pages[leaf.index()] {
                *next = Some(right_id);
            }
            self.insert_into_parent(path, leaf, sep, right_id);
        }
        old
    }

    /// Propagates a split upwards: `sep` separates `left` (existing) from `right` (new).
    fn insert_into_parent(&mut self, mut path: Vec<PageId>, left: PageId, sep: K, right: PageId) {
        match path.pop() {
            None => {
                // The split page was the root; create a new root.
                let new_root = PageId(self.pages.len() as u32);
                self.pages.push(Page::Internal {
                    keys: vec![sep],
                    children: vec![left, right],
                });
                self.pages_written += 1;
                self.root = new_root;
            }
            Some(parent) => {
                self.pages_written += 1;
                let split = match &mut self.pages[parent.index()] {
                    Page::Internal { keys, children } => {
                        let pos = children
                            .iter()
                            .position(|&c| c == left)
                            .expect("left child must be present in parent");
                        keys.insert(pos, sep);
                        children.insert(pos + 1, right);
                        if keys.len() > self.capacity {
                            let mid = keys.len() / 2;
                            let up_key = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // remove up_key from the left node
                            let right_children = children.split_off(mid + 1);
                            Some((up_key, right_keys, right_children))
                        } else {
                            None
                        }
                    }
                    Page::Leaf { .. } => unreachable!("path contains only internal pages"),
                };
                if let Some((up_key, right_keys, right_children)) = split {
                    let new_right = PageId(self.pages.len() as u32);
                    self.pages.push(Page::Internal {
                        keys: right_keys,
                        children: right_children,
                    });
                    self.pages_written += 1;
                    self.insert_into_parent(path, parent, up_key, new_right);
                }
            }
        }
    }

    /// Iterates over all `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.range_from(None)
    }

    /// Iterates over all pairs with `key >= start` (or all pairs when `start` is
    /// `None`) in key order.
    fn range_from(&self, start: Option<&K>) -> BTreeIter<'_, K, V> {
        // Find the left-most relevant leaf.
        let mut page = self.root;
        loop {
            self.note_read();
            match &self.pages[page.index()] {
                Page::Internal { keys, children } => {
                    let idx = match start {
                        Some(k) => keys.partition_point(|key| key <= k),
                        None => 0,
                    };
                    page = children[idx];
                }
                Page::Leaf { keys, .. } => {
                    let idx = match start {
                        Some(k) => keys.partition_point(|key| key < k),
                        None => 0,
                    };
                    return BTreeIter {
                        tree: self,
                        leaf: Some(page),
                        offset: idx,
                    };
                }
            }
        }
    }

    /// Iterates over all pairs with `start <= key <= end` in key order.
    pub fn range(&self, start: &K, end: &K) -> impl Iterator<Item = (&K, &V)> + '_ {
        let end = end.clone();
        self.range_from(Some(start))
            .take_while(move |(k, _)| **k <= end)
    }

    /// The smallest key in the tree, if any.
    pub fn min_key(&self) -> Option<&K> {
        self.iter().next().map(|(k, _)| k)
    }

    /// The largest key in the tree, if any.
    pub fn max_key(&self) -> Option<&K> {
        // Descend along the right-most children.
        let mut page = self.root;
        loop {
            self.note_read();
            match &self.pages[page.index()] {
                Page::Internal { children, .. } => page = *children.last().unwrap(),
                Page::Leaf { keys, .. } => return keys.last(),
            }
        }
    }
}

impl<K: Ord + Clone + Debug, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over leaf chains.
struct BTreeIter<'t, K, V> {
    tree: &'t BPlusTree<K, V>,
    leaf: Option<PageId>,
    offset: usize,
}

impl<'t, K: Ord + Clone + Debug, V: Clone> Iterator for BTreeIter<'t, K, V> {
    type Item = (&'t K, &'t V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            match &self.tree.pages[leaf.index()] {
                Page::Leaf { keys, values, next } => {
                    if self.offset < keys.len() {
                        let item = (&keys[self.offset], &values[self.offset]);
                        self.offset += 1;
                        return Some(item);
                    }
                    self.tree.note_read();
                    self.leaf = *next;
                    self.offset = 0;
                }
                Page::Internal { .. } => unreachable!("leaf chain contains only leaves"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn rejects_tiny_page_capacity() {
        assert!(matches!(
            BPlusTree::<u32, u32>::with_page_capacity(3),
            Err(GeoTextError::InvalidPageSize { capacity: 3 })
        ));
        assert!(BPlusTree::<u32, u32>::with_page_capacity(4).is_ok());
    }

    #[test]
    fn insert_get_and_replace() {
        let mut t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(10u32, "a"), None);
        assert_eq!(t.insert(20, "b"), None);
        assert_eq!(t.insert(10, "c"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&10), Some(&"c"));
        assert_eq!(t.get(&20), Some(&"b"));
        assert_eq!(t.get(&30), None);
        assert!(t.contains_key(&20));
        assert!(!t.contains_key(&99));
    }

    #[test]
    fn splits_grow_the_tree() {
        let mut t = BPlusTree::with_page_capacity(4).unwrap();
        for i in 0..100u32 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() >= 3, "height {}", t.height());
        assert!(t.page_count() > 10);
        for i in 0..100u32 {
            assert_eq!(t.get(&i), Some(&(i * 2)));
        }
        assert_eq!(t.min_key(), Some(&0));
        assert_eq!(t.max_key(), Some(&99));
    }

    #[test]
    fn reverse_and_interleaved_insert_orders() {
        let mut t = BPlusTree::with_page_capacity(4).unwrap();
        for i in (0..50u32).rev() {
            t.insert(i, i);
        }
        for i in (50..100u32).step_by(2) {
            t.insert(i, i);
        }
        for i in (51..100u32).step_by(2) {
            t.insert(i, i);
        }
        let collected: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut t = BPlusTree::with_page_capacity(4).unwrap();
        let keys = [17u32, 3, 99, 42, 8, 56, 23, 71, 64, 12, 5, 88];
        for &k in &keys {
            t.insert(k, k as u64);
        }
        let collected: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        let mut expected = keys.to_vec();
        expected.sort_unstable();
        assert_eq!(collected, expected);
    }

    #[test]
    fn range_scan_is_inclusive() {
        let mut t = BPlusTree::with_page_capacity(4).unwrap();
        for i in 0..50u32 {
            t.insert(i, ());
        }
        let got: Vec<u32> = t.range(&10, &20).map(|(k, _)| *k).collect();
        assert_eq!(got, (10..=20).collect::<Vec<_>>());
        let empty: Vec<u32> = t.range(&60, &70).map(|(k, _)| *k).collect();
        assert!(empty.is_empty());
        let single: Vec<u32> = t.range(&5, &5).map(|(k, _)| *k).collect();
        assert_eq!(single, vec![5]);
    }

    #[test]
    fn io_counters_increase() {
        let mut t = BPlusTree::with_page_capacity(4).unwrap();
        for i in 0..200u32 {
            t.insert(i, i);
        }
        let written = t.pages_written();
        assert!(written >= 200, "writes {written}");
        let before = t.pages_read();
        let _ = t.get(&150);
        assert!(t.pages_read() > before);
    }

    #[test]
    fn empty_tree_edge_cases() {
        let t: BPlusTree<u32, u32> = BPlusTree::new();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn string_keys_work() {
        let mut t: BPlusTree<String, u32> = BPlusTree::with_page_capacity(4).unwrap();
        for term in ["restaurant", "cafe", "bar", "museum", "pizza", "sushi"] {
            t.insert(term.to_string(), term.len() as u32);
        }
        assert_eq!(t.get(&"cafe".to_string()), Some(&4));
        let first = t.iter().next().unwrap().0.clone();
        assert_eq!(first, "bar");
    }

    proptest! {
        /// The B+-tree behaves exactly like std's BTreeMap for inserts, point
        /// lookups and ordered iteration, across page capacities.
        #[test]
        fn behaves_like_btreemap(
            ops in collection::vec((0u16..500, 0u32..1000), 1..400),
            capacity in 4usize..32,
        ) {
            let mut tree = BPlusTree::with_page_capacity(capacity).unwrap();
            let mut reference = BTreeMap::new();
            for (k, v) in ops {
                let expected = reference.insert(k, v);
                let got = tree.insert(k, v);
                prop_assert_eq!(got, expected);
            }
            prop_assert_eq!(tree.len(), reference.len());
            for (k, v) in &reference {
                prop_assert_eq!(tree.get(k), Some(v));
            }
            let tree_items: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
            let ref_items: Vec<(u16, u32)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(tree_items, ref_items);
        }

        /// Range scans agree with BTreeMap range scans.
        #[test]
        fn range_matches_btreemap(
            keys in collection::btree_set(0u16..300, 0..150),
            lo in 0u16..300,
            hi in 0u16..300,
        ) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let mut tree = BPlusTree::with_page_capacity(6).unwrap();
            let mut reference = BTreeMap::new();
            for &k in &keys {
                tree.insert(k, k as u64);
                reference.insert(k, k as u64);
            }
            let got: Vec<u16> = tree.range(&lo, &hi).map(|(k, _)| *k).collect();
            let expected: Vec<u16> = reference.range(lo..=hi).map(|(k, _)| *k).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
