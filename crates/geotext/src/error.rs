//! Error types for the geo-textual object substrate.

use std::fmt;

/// Errors produced while building or querying geo-textual indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoTextError {
    /// An object id was referenced that does not exist in the collection.
    UnknownObject {
        /// The offending object id.
        object: u64,
    },
    /// An object has an empty keyword description; such objects carry no
    /// queryable information and are rejected at insertion time.
    EmptyDescription {
        /// The offending object id.
        object: u64,
    },
    /// An object's location is not finite.
    InvalidLocation {
        /// The offending object id.
        object: u64,
    },
    /// The grid index was configured with a non-positive cell size or an empty extent.
    InvalidGridConfig {
        /// Explanation of the configuration failure.
        message: String,
    },
    /// The B+-tree page size is too small to hold even a single entry.
    InvalidPageSize {
        /// The rejected page capacity.
        capacity: usize,
    },
}

impl fmt::Display for GeoTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoTextError::UnknownObject { object } => write!(f, "unknown object id {object}"),
            GeoTextError::EmptyDescription { object } => {
                write!(f, "object {object} has an empty text description")
            }
            GeoTextError::InvalidLocation { object } => {
                write!(f, "object {object} has a non-finite location")
            }
            GeoTextError::InvalidGridConfig { message } => {
                write!(f, "invalid grid configuration: {message}")
            }
            GeoTextError::InvalidPageSize { capacity } => {
                write!(f, "B+-tree page capacity {capacity} is too small")
            }
        }
    }
}

impl std::error::Error for GeoTextError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GeoTextError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(GeoTextError::UnknownObject { object: 9 }
            .to_string()
            .contains('9'));
        assert!(GeoTextError::EmptyDescription { object: 2 }
            .to_string()
            .contains("empty"));
        assert!(GeoTextError::InvalidLocation { object: 3 }
            .to_string()
            .contains("non-finite"));
        assert!(GeoTextError::InvalidGridConfig {
            message: "cell size".into()
        }
        .to_string()
        .contains("cell size"));
        assert!(GeoTextError::InvalidPageSize { capacity: 1 }
            .to_string()
            .contains('1'));
    }
}
