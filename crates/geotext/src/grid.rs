//! The uniform spatial grid index of Section 3, sharded into column bands.
//!
//! "We use a grid index to organize the geo-textual objects.  We partition the
//! entire space according to a uniform grid, and each object is stored in the
//! grid cell that its point location belongs to.  In each grid cell, we
//! maintain an inverted list with the keywords of the objects stored in this
//! cell."
//!
//! [`GridIndex`] partitions the bounding extent into square cells of a
//! configurable size; each cell holds its objects' ids plus an
//! [`InvertedIndex`] backed by the paged B⁺-tree.
//!
//! # Sharding
//!
//! The cell columns are split into contiguous **column bands** (shards), each
//! owning its own cell map.  Because every object lives in exactly one cell —
//! and hence exactly one shard — shards are mutually disjoint: the build
//! phase can fill them concurrently behind independent locks
//! ([`GridIndex::bulk_insert_preinterned`]), and keyword scoring can fan a
//! query rectangle's shard range out across threads and merge per-shard
//! accumulators in ascending shard order with a result bit-identical to the
//! sequential pass ([`GridIndex::accumulate_scores_in_rect_with_workers`]).
//! A rectangle's cover maps to a *contiguous* shard range, so a query touches
//! only the shards its columns intersect.

use crate::error::{GeoTextError, Result};
use crate::inverted::InvertedIndex;
use crate::object::{GeoTextObject, ObjectId};
use crate::vocab::{TermId, Vocabulary};
use lcmsr_roadnet::geo::{Point, Rect};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default number of column-band shards for [`GridIndex::new`] (clamped to
/// the column count, so small grids degenerate to one shard per column).
pub const DEFAULT_SHARD_COUNT: usize = 8;

/// Identifier of a grid cell as (column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId {
    /// Column index (x direction).
    pub col: u32,
    /// Row index (y direction).
    pub row: u32,
}

/// One cell of the grid: the objects whose location falls inside it and the
/// cell-local inverted index over their keywords.
#[derive(Debug, Clone, Default)]
pub struct GridCell {
    /// Ids of the objects stored in this cell.
    pub objects: Vec<ObjectId>,
    /// Inverted lists over the cell's objects.
    pub inverted: InvertedIndex,
}

/// One column band of the grid: the occupied cells of a contiguous column
/// range.  Shards never share a cell, so they can be built and queried
/// independently.
#[derive(Debug, Clone, Default)]
struct GridShard {
    cells: BTreeMap<CellId, GridCell>,
    object_count: usize,
}

/// The inclusive cell range of a query rectangle.
#[derive(Debug, Clone, Copy)]
struct Cover {
    col_lo: u32,
    col_hi: u32,
    row_lo: u32,
    row_hi: u32,
}

/// A uniform grid index over geo-textual objects, sharded by column band.
#[derive(Debug, Clone)]
pub struct GridIndex {
    extent: Rect,
    cell_size: f64,
    cols: u32,
    rows: u32,
    shards: Vec<GridShard>,
    object_count: usize,
}

impl GridIndex {
    /// Creates an empty grid over `extent` with square cells of `cell_size`
    /// metres and the default shard count.
    pub fn new(extent: Rect, cell_size: f64) -> Result<Self> {
        Self::new_sharded(extent, cell_size, DEFAULT_SHARD_COUNT)
    }

    /// Creates an empty grid with an explicit number of column-band shards.
    /// The count is clamped to `1..=cols`, so every shard owns at least one
    /// column; the shard layout never changes results, only parallelism.
    pub fn new_sharded(extent: Rect, cell_size: f64, shard_count: usize) -> Result<Self> {
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err(GeoTextError::InvalidGridConfig {
                message: format!("cell size must be positive, got {cell_size}"),
            });
        }
        if extent.width() <= 0.0 || extent.height() <= 0.0 {
            return Err(GeoTextError::InvalidGridConfig {
                message: "extent must have positive width and height".into(),
            });
        }
        let cols = (extent.width() / cell_size).ceil().max(1.0) as u32;
        let rows = (extent.height() / cell_size).ceil().max(1.0) as u32;
        let shard_count = shard_count.clamp(1, cols as usize);
        Ok(GridIndex {
            extent,
            cell_size,
            cols,
            rows,
            shards: vec![GridShard::default(); shard_count],
            object_count: 0,
        })
    }

    /// The extent covered by the grid.
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// The configured cell size in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Grid dimensions as (columns, rows).
    pub fn dimensions(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    /// Number of column-band shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of cells that contain at least one object.
    pub fn occupied_cells(&self) -> usize {
        self.shards.iter().map(|s| s.cells.len()).sum()
    }

    /// Total number of indexed objects.
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// The shard owning column `col` (caller guarantees `col < cols`).
    /// Column bands are assigned by even division, so the mapping is
    /// monotone: a contiguous column range maps to a contiguous shard range.
    fn shard_of_col(&self, col: u32) -> usize {
        let shard = u64::from(col) * self.shards.len() as u64 / u64::from(self.cols);
        (shard as usize).min(self.shards.len() - 1)
    }

    /// First column owned by `shard`.
    fn shard_col_lo(&self, shard: usize) -> u32 {
        ((shard as u64 * u64::from(self.cols)).div_ceil(self.shards.len() as u64)) as u32
    }

    /// Last column owned by `shard` (inclusive).
    fn shard_col_hi(&self, shard: usize) -> u32 {
        if shard + 1 == self.shards.len() {
            self.cols - 1
        } else {
            self.shard_col_lo(shard + 1) - 1
        }
    }

    /// The cell id containing `p`, or `None` if `p` lies outside the extent.
    pub fn cell_of(&self, p: &Point) -> Option<CellId> {
        if !self.extent.contains(p) {
            return None;
        }
        let col = (((p.x - self.extent.min_x) / self.cell_size) as u32).min(self.cols - 1);
        let row = (((p.y - self.extent.min_y) / self.cell_size) as u32).min(self.rows - 1);
        Some(CellId { col, row })
    }

    /// Rectangle covered by a cell.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let min_x = self.extent.min_x + cell.col as f64 * self.cell_size;
        let min_y = self.extent.min_y + cell.row as f64 * self.cell_size;
        Rect::new(
            min_x,
            min_y,
            (min_x + self.cell_size).min(self.extent.max_x),
            (min_y + self.cell_size).min(self.extent.max_y),
        )
    }

    /// Validates an object and resolves its cell, without inserting.
    fn validate_and_locate(&self, object: &GeoTextObject) -> Result<CellId> {
        if !object.point.is_finite() {
            return Err(GeoTextError::InvalidLocation {
                object: object.id.0,
            });
        }
        if object.is_empty() {
            return Err(GeoTextError::EmptyDescription {
                object: object.id.0,
            });
        }
        self.cell_of(&object.point)
            .ok_or(GeoTextError::InvalidLocation {
                object: object.id.0,
            })
    }

    /// Inserts an object, interning its terms into `vocabulary`.
    ///
    /// Objects outside the grid extent or with non-finite coordinates are
    /// rejected; objects with empty descriptions are rejected as well since
    /// they can never contribute to a query result.
    pub fn insert(
        &mut self,
        vocabulary: &mut Vocabulary,
        object: &GeoTextObject,
    ) -> Result<CellId> {
        let cell_id = self.validate_and_locate(object)?;
        let shard_index = self.shard_of_col(cell_id.col);
        let shard = &mut self.shards[shard_index];
        let cell = shard.cells.entry(cell_id).or_default();
        cell.objects.push(object.id);
        cell.inverted.add_object(vocabulary, object);
        shard.object_count += 1;
        self.object_count += 1;
        Ok(cell_id)
    }

    /// Bulk-inserts objects whose terms were **already interned** into
    /// `vocabulary` (by a [`Vocabulary::register_document`] pass over the
    /// same objects, in the same order).  Objects are routed to their shards
    /// in input order, then the shards — each behind its own lock — are
    /// filled by up to `workers` scoped threads pulling whole shards off a
    /// shared cursor.  One shard is only ever touched by one worker, and
    /// per-cell object order equals input order, so the resulting index is
    /// bit-identical to a sequential [`GridIndex::insert`] loop.
    ///
    /// Fails (without mutating the grid) on the first invalid object, with
    /// the same error [`GridIndex::insert`] would report.
    pub fn bulk_insert_preinterned<'a, I>(
        &mut self,
        vocabulary: &Vocabulary,
        objects: I,
        workers: usize,
    ) -> Result<usize>
    where
        I: IntoIterator<Item = &'a GeoTextObject>,
    {
        let mut routed: Vec<Vec<(CellId, &GeoTextObject)>> = vec![Vec::new(); self.shards.len()];
        let mut total = 0usize;
        for object in objects {
            let cell_id = self.validate_and_locate(object)?;
            routed[self.shard_of_col(cell_id.col)].push((cell_id, object));
            total += 1;
        }
        let workers = workers.clamp(1, self.shards.len());
        if workers <= 1 {
            for (shard, batch) in self.shards.iter_mut().zip(&routed) {
                fill_shard(shard, vocabulary, batch);
            }
        } else {
            // Each shard pairs with its batch behind an independent lock;
            // workers claim shard indices from the cursor, so a lock is only
            // ever taken by the single worker that claimed it.
            type ShardSlot<'s, 'o> = Mutex<(&'s mut GridShard, &'s [(CellId, &'o GeoTextObject)])>;
            let slots: Vec<ShardSlot<'_, '_>> = self
                .shards
                .iter_mut()
                .zip(routed.iter().map(Vec::as_slice))
                .map(Mutex::new)
                .collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(i) else { break };
                        let mut guard = slot.lock().expect("grid shard lock poisoned");
                        let (shard, batch) = &mut *guard;
                        fill_shard(shard, vocabulary, batch);
                    });
                }
            });
        }
        self.object_count += total;
        Ok(total)
    }

    /// The cell with the given id, if it holds any objects.
    pub fn cell(&self, id: CellId) -> Option<&GridCell> {
        if id.col >= self.cols {
            return None;
        }
        self.shards[self.shard_of_col(id.col)].cells.get(&id)
    }

    /// The inclusive cell range intersecting `rect`, or `None` when disjoint.
    fn cover_of(&self, rect: &Rect) -> Option<Cover> {
        let clipped = self.extent.intersection(rect)?;
        let col = |x: f64| (((x - self.extent.min_x) / self.cell_size) as u32).min(self.cols - 1);
        let row = |y: f64| (((y - self.extent.min_y) / self.cell_size) as u32).min(self.rows - 1);
        Some(Cover {
            col_lo: col(clipped.min_x),
            col_hi: col(clipped.max_x),
            row_lo: row(clipped.min_y),
            row_hi: row(clipped.max_y),
        })
    }

    /// Ids of the occupied cells whose rectangle intersects `rect`.
    pub fn cells_intersecting(&self, rect: &Rect) -> Vec<CellId> {
        let Some(cover) = self.cover_of(rect) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for col in cover.col_lo..=cover.col_hi {
            let cells = &self.shards[self.shard_of_col(col)].cells;
            for row in cover.row_lo..=cover.row_hi {
                let id = CellId { col, row };
                if cells.contains_key(&id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Accumulates one shard's contribution to the Equation-2 partial scores,
    /// visiting the shard's columns inside the cover in ascending order.
    fn accumulate_shard(
        &self,
        shard: usize,
        cover: Cover,
        query_terms: &[(TermId, f64)],
        acc: &mut BTreeMap<ObjectId, f64>,
    ) {
        let col_lo = cover.col_lo.max(self.shard_col_lo(shard));
        let col_hi = cover.col_hi.min(self.shard_col_hi(shard));
        let cells = &self.shards[shard].cells;
        for col in col_lo..=col_hi {
            for row in cover.row_lo..=cover.row_hi {
                if let Some(cell) = cells.get(&CellId { col, row }) {
                    for (obj, partial) in cell.inverted.accumulate_scores(query_terms) {
                        *acc.entry(obj).or_insert(0.0) += partial;
                    }
                }
            }
        }
    }

    /// Accumulates Equation-2 partial scores `Σ w_{Q.ψ,t}·wto(t)` for every
    /// object located in a cell intersecting `rect`.  The caller divides by the
    /// query norm and filters objects that fall outside `rect` itself (cells
    /// only approximate the rectangle).
    pub fn accumulate_scores_in_rect(
        &self,
        rect: &Rect,
        query_terms: &[(TermId, f64)],
    ) -> BTreeMap<ObjectId, f64> {
        self.accumulate_scores_in_rect_with_workers(rect, query_terms, 1)
    }

    /// Like [`GridIndex::accumulate_scores_in_rect`], fanning the rectangle's
    /// (contiguous) shard range out across up to `workers` scoped threads.
    /// Only shards whose column band intersects the rectangle are visited.
    ///
    /// Bit-identical to the sequential pass for any worker count: each worker
    /// covers a contiguous run of shards, results merge in ascending shard
    /// order, and every object lives in exactly one cell — so its score is
    /// summed entirely within one worker, in the same cell order as the
    /// sequential loop.
    pub fn accumulate_scores_in_rect_with_workers(
        &self,
        rect: &Rect,
        query_terms: &[(TermId, f64)],
        workers: usize,
    ) -> BTreeMap<ObjectId, f64> {
        let mut acc = BTreeMap::new();
        let Some(cover) = self.cover_of(rect) else {
            return acc;
        };
        let shard_lo = self.shard_of_col(cover.col_lo);
        let shard_hi = self.shard_of_col(cover.col_hi);
        let shard_count = shard_hi - shard_lo + 1;
        let workers = workers.clamp(1, shard_count.min(64));
        if workers <= 1 {
            for shard in shard_lo..=shard_hi {
                self.accumulate_shard(shard, cover, query_terms, &mut acc);
            }
            return acc;
        }
        let partials = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = shard_lo + shard_count * w / workers;
                    let hi = shard_lo + shard_count * (w + 1) / workers - 1;
                    scope.spawn(move || {
                        let mut partial = BTreeMap::new();
                        for shard in lo..=hi {
                            self.accumulate_shard(shard, cover, query_terms, &mut partial);
                        }
                        partial
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("score shard worker panicked"))
                .collect::<Vec<_>>()
        });
        for partial in partials {
            for (obj, partial_score) in partial {
                *acc.entry(obj).or_insert(0.0) += partial_score;
            }
        }
        acc
    }

    /// Accumulates Equation-2 partial scores over an explicit cell subset —
    /// the delta-prepare path, which rescans only the cells a panned query
    /// rectangle newly covers instead of the whole cover.
    ///
    /// Every object lives in exactly one cell, so its full partial score
    /// accumulates entirely within that cell's inverted index: for any cell
    /// in the subset, the per-object scores here are bit-identical to what
    /// [`GridIndex::accumulate_scores_in_rect`] would produce for a rectangle
    /// covering that cell.
    pub fn accumulate_scores_in_cells(
        &self,
        cells: &[CellId],
        query_terms: &[(TermId, f64)],
    ) -> BTreeMap<ObjectId, f64> {
        let mut acc = BTreeMap::new();
        for &id in cells {
            if let Some(cell) = self.cell(id) {
                for (obj, partial) in cell.inverted.accumulate_scores(query_terms) {
                    *acc.entry(obj).or_insert(0.0) += partial;
                }
            }
        }
        acc
    }
}

/// Indexes a routed batch into one shard, in batch (= input) order.
fn fill_shard(shard: &mut GridShard, vocabulary: &Vocabulary, batch: &[(CellId, &GeoTextObject)]) {
    for &(cell_id, object) in batch {
        let cell = shard.cells.entry(cell_id).or_default();
        cell.objects.push(object.id);
        cell.inverted.add_object_preinterned(vocabulary, object);
        shard.object_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_objects() -> Vec<GeoTextObject> {
        vec![
            GeoTextObject::from_keywords(0u64, Point::new(50.0, 50.0), ["restaurant"]),
            GeoTextObject::from_keywords(1u64, Point::new(150.0, 50.0), ["restaurant", "pizza"]),
            GeoTextObject::from_keywords(2u64, Point::new(950.0, 950.0), ["cafe"]),
            GeoTextObject::from_keywords(3u64, Point::new(450.0, 450.0), ["museum"]),
        ]
    }

    fn build_grid() -> (GridIndex, Vocabulary) {
        let extent = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut grid = GridIndex::new(extent, 100.0).unwrap();
        let mut vocab = Vocabulary::new();
        for o in make_objects() {
            vocab.register_document(o.terms.keys().map(String::as_str));
            grid.insert(&mut vocab, &o).unwrap();
        }
        (grid, vocab)
    }

    /// Many objects spread over the extent, with overlapping keyword sets so
    /// scores genuinely accumulate across cells and shards.
    fn dense_objects() -> Vec<GeoTextObject> {
        let keywords = ["restaurant", "pizza", "cafe", "museum", "bar"];
        (0..200u64)
            .map(|i| {
                let x = (i % 20) as f64 * 50.0 + 5.0;
                let y = (i / 20) as f64 * 95.0 + 5.0;
                let a = keywords[(i % 5) as usize];
                let b = keywords[(i % 3) as usize];
                GeoTextObject::from_keywords(i, Point::new(x, y), [a, b])
            })
            .collect()
    }

    fn build_dense(shards: usize) -> (GridIndex, Vocabulary) {
        let extent = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut grid = GridIndex::new_sharded(extent, 100.0, shards).unwrap();
        let mut vocab = Vocabulary::new();
        for o in dense_objects() {
            vocab.register_document(o.terms.keys().map(String::as_str));
            grid.insert(&mut vocab, &o).unwrap();
        }
        (grid, vocab)
    }

    fn query_terms(vocab: &Vocabulary) -> Vec<(TermId, f64)> {
        ["restaurant", "pizza", "bar"]
            .iter()
            .map(|t| {
                let id = vocab.lookup(t).unwrap();
                (id, vocab.idf(id))
            })
            .collect()
    }

    #[test]
    fn rejects_invalid_configuration() {
        let extent = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert!(GridIndex::new(extent, 0.0).is_err());
        assert!(GridIndex::new(extent, -5.0).is_err());
        assert!(GridIndex::new(Rect::new(0.0, 0.0, 0.0, 10.0), 10.0).is_err());
        assert!(GridIndex::new(extent, 10.0).is_ok());
    }

    #[test]
    fn grid_dimensions_cover_extent() {
        let grid = GridIndex::new(Rect::new(0.0, 0.0, 1050.0, 980.0), 100.0).unwrap();
        assert_eq!(grid.dimensions(), (11, 10));
        assert_eq!(grid.cell_size(), 100.0);
    }

    #[test]
    fn objects_land_in_expected_cells() {
        let (grid, _) = build_grid();
        assert_eq!(grid.object_count(), 4);
        assert_eq!(grid.occupied_cells(), 4);
        assert_eq!(
            grid.cell_of(&Point::new(50.0, 50.0)),
            Some(CellId { col: 0, row: 0 })
        );
        assert_eq!(
            grid.cell_of(&Point::new(150.0, 50.0)),
            Some(CellId { col: 1, row: 0 })
        );
        // A point exactly on the max boundary clamps into the last cell.
        assert_eq!(
            grid.cell_of(&Point::new(1000.0, 1000.0)),
            Some(CellId { col: 9, row: 9 })
        );
        assert_eq!(grid.cell_of(&Point::new(-1.0, 0.0)), None);
        let cell = grid.cell(CellId { col: 0, row: 0 }).unwrap();
        assert_eq!(cell.objects, vec![ObjectId(0)]);
        assert_eq!(cell.inverted.object_count(), 1);
    }

    #[test]
    fn cell_rect_tiles_the_extent() {
        let (grid, _) = build_grid();
        let r = grid.cell_rect(CellId { col: 1, row: 0 });
        assert_eq!(r, Rect::new(100.0, 0.0, 200.0, 100.0));
        let last = grid.cell_rect(CellId { col: 9, row: 9 });
        assert_eq!(last.max_x, 1000.0);
        assert_eq!(last.max_y, 1000.0);
    }

    #[test]
    fn rejects_bad_objects() {
        let (mut grid, mut vocab) = build_grid();
        let outside = GeoTextObject::from_keywords(10u64, Point::new(5000.0, 0.0), ["bar"]);
        assert!(matches!(
            grid.insert(&mut vocab, &outside),
            Err(GeoTextError::InvalidLocation { object: 10 })
        ));
        let empty =
            GeoTextObject::from_keywords(11u64, Point::new(10.0, 10.0), Vec::<String>::new());
        assert!(matches!(
            grid.insert(&mut vocab, &empty),
            Err(GeoTextError::EmptyDescription { object: 11 })
        ));
        let nan = GeoTextObject::from_keywords(12u64, Point::new(f64::NAN, 10.0), ["bar"]);
        assert!(matches!(
            grid.insert(&mut vocab, &nan),
            Err(GeoTextError::InvalidLocation { object: 12 })
        ));
    }

    #[test]
    fn cells_intersecting_finds_occupied_cells_only() {
        let (grid, _) = build_grid();
        let all = grid.cells_intersecting(&Rect::new(0.0, 0.0, 1000.0, 1000.0));
        assert_eq!(all.len(), 4);
        let corner = grid.cells_intersecting(&Rect::new(0.0, 0.0, 160.0, 90.0));
        assert_eq!(corner.len(), 2);
        let nothing = grid.cells_intersecting(&Rect::new(600.0, 0.0, 800.0, 200.0));
        assert!(nothing.is_empty());
        let outside = grid.cells_intersecting(&Rect::new(2000.0, 2000.0, 3000.0, 3000.0));
        assert!(outside.is_empty());
    }

    #[test]
    fn accumulate_scores_in_rect_limits_to_region() {
        let (grid, vocab) = build_grid();
        let restaurant = vocab.lookup("restaurant").unwrap();
        let terms = vec![(restaurant, vocab.idf(restaurant))];
        // Rectangle covering only the two restaurant cells.
        let acc = grid.accumulate_scores_in_rect(&Rect::new(0.0, 0.0, 200.0, 100.0), &terms);
        assert_eq!(acc.len(), 2);
        assert!(acc.contains_key(&ObjectId(0)));
        assert!(acc.contains_key(&ObjectId(1)));
        // Whole space: still only restaurant matches, cafe/museum do not appear.
        let acc_all = grid.accumulate_scores_in_rect(&Rect::new(0.0, 0.0, 1000.0, 1000.0), &terms);
        assert_eq!(acc_all.len(), 2);
        assert!(!acc_all.contains_key(&ObjectId(2)));
    }

    #[test]
    fn shard_layout_never_changes_scores() {
        let (reference, vocab) = build_dense(1);
        let terms = query_terms(&vocab);
        let rects = [
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
            Rect::new(130.0, 40.0, 620.0, 880.0),
            Rect::new(480.0, 0.0, 520.0, 1000.0), // straddles a shard boundary
            Rect::new(990.0, 990.0, 2000.0, 2000.0),
        ];
        for shards in [2usize, 3, 4, 7, 32] {
            let (grid, shard_vocab) = build_dense(shards);
            assert_eq!(
                query_terms(&shard_vocab),
                terms,
                "vocab must not depend on sharding"
            );
            assert!(grid.shard_count() >= 2);
            for rect in &rects {
                let a = reference.accumulate_scores_in_rect(rect, &terms);
                let b = grid.accumulate_scores_in_rect(rect, &terms);
                assert_eq!(a.len(), b.len(), "shards={shards} rect={rect:?}");
                for ((oa, sa), (ob, sb)) in a.iter().zip(&b) {
                    assert_eq!(oa, ob);
                    assert_eq!(sa.to_bits(), sb.to_bits(), "shards={shards} obj={oa:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_scoring_is_bit_identical_to_sequential() {
        let (grid, vocab) = build_dense(8);
        let terms = query_terms(&vocab);
        let rects = [
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
            Rect::new(330.0, 150.0, 700.0, 480.0),
            Rect::new(40.0, 40.0, 60.0, 60.0),   // single shard
            Rect::new(-10.0, -10.0, -1.0, -1.0), // empty
        ];
        for rect in &rects {
            let sequential = grid.accumulate_scores_in_rect(rect, &terms);
            for workers in [2usize, 3, 4, 7, 16] {
                let parallel = grid.accumulate_scores_in_rect_with_workers(rect, &terms, workers);
                assert_eq!(sequential.len(), parallel.len());
                for ((oa, sa), (ob, sb)) in sequential.iter().zip(&parallel) {
                    assert_eq!(oa, ob);
                    assert_eq!(sa.to_bits(), sb.to_bits(), "workers={workers} obj={oa:?}");
                }
            }
        }
    }

    #[test]
    fn cell_subset_scores_match_the_rect_pass_bit_for_bit() {
        let (grid, vocab) = build_dense(4);
        let terms = query_terms(&vocab);
        let rects = [
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
            Rect::new(130.0, 40.0, 620.0, 880.0),
            Rect::new(40.0, 40.0, 60.0, 60.0),
        ];
        for rect in &rects {
            let by_rect = grid.accumulate_scores_in_rect(rect, &terms);
            let cells = grid.cells_intersecting(rect);
            let by_cells = grid.accumulate_scores_in_cells(&cells, &terms);
            assert_eq!(by_rect.len(), by_cells.len(), "rect={rect:?}");
            for ((oa, sa), (ob, sb)) in by_rect.iter().zip(&by_cells) {
                assert_eq!(oa, ob);
                assert_eq!(sa.to_bits(), sb.to_bits(), "rect={rect:?} obj={oa:?}");
            }
        }
        // Unoccupied or out-of-range ids contribute nothing.
        let empty = grid.accumulate_scores_in_cells(
            &[CellId { col: 0, row: 9 }, CellId { col: 999, row: 0 }],
            &terms,
        );
        assert!(empty.is_empty());
    }

    #[test]
    fn bulk_preinterned_build_matches_sequential_inserts() {
        let objects = dense_objects();
        let (sequential, vocab) = build_dense(4);
        for workers in [1usize, 3, 8] {
            let mut bulk =
                GridIndex::new_sharded(Rect::new(0.0, 0.0, 1000.0, 1000.0), 100.0, 4).unwrap();
            let inserted = bulk
                .bulk_insert_preinterned(&vocab, &objects, workers)
                .unwrap();
            assert_eq!(inserted, objects.len());
            assert_eq!(bulk.object_count(), sequential.object_count());
            assert_eq!(bulk.occupied_cells(), sequential.occupied_cells());
            for cell_id in sequential.cells_intersecting(&Rect::new(0.0, 0.0, 1000.0, 1000.0)) {
                let a = sequential.cell(cell_id).unwrap();
                let b = bulk.cell(cell_id).unwrap();
                assert_eq!(a.objects, b.objects, "cell {cell_id:?}");
            }
            let terms = query_terms(&vocab);
            let rect = Rect::new(0.0, 0.0, 1000.0, 1000.0);
            let a = sequential.accumulate_scores_in_rect(&rect, &terms);
            let b = bulk.accumulate_scores_in_rect(&rect, &terms);
            assert_eq!(a.len(), b.len());
            for ((oa, sa), (ob, sb)) in a.iter().zip(&b) {
                assert_eq!(oa, ob);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }

    #[test]
    fn bulk_insert_rejects_invalid_objects_without_mutating() {
        let vocab = Vocabulary::new();
        let mut grid = GridIndex::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 100.0).unwrap();
        let bad = vec![GeoTextObject::from_keywords(
            7u64,
            Point::new(5000.0, 0.0),
            ["bar"],
        )];
        assert!(matches!(
            grid.bulk_insert_preinterned(&vocab, &bad, 4),
            Err(GeoTextError::InvalidLocation { object: 7 })
        ));
        assert_eq!(grid.object_count(), 0);
        assert_eq!(grid.occupied_cells(), 0);
    }

    #[test]
    fn shard_bands_partition_the_columns() {
        let grid = GridIndex::new_sharded(Rect::new(0.0, 0.0, 1000.0, 1000.0), 100.0, 4).unwrap();
        assert_eq!(grid.shard_count(), 4);
        let mut prev = None;
        for col in 0..grid.dimensions().0 {
            let s = grid.shard_of_col(col);
            assert!(col >= grid.shard_col_lo(s) && col <= grid.shard_col_hi(s));
            if let Some(p) = prev {
                assert!(s == p || s == p + 1, "shard map must be monotone");
            }
            prev = Some(s);
        }
        assert_eq!(grid.shard_of_col(0), 0);
        assert_eq!(grid.shard_of_col(grid.dimensions().0 - 1), 3);
        // Requesting more shards than columns clamps to one shard per column.
        let tiny = GridIndex::new_sharded(Rect::new(0.0, 0.0, 300.0, 300.0), 100.0, 64).unwrap();
        assert_eq!(tiny.shard_count(), 3);
    }
}
