//! The uniform spatial grid index of Section 3.
//!
//! "We use a grid index to organize the geo-textual objects.  We partition the
//! entire space according to a uniform grid, and each object is stored in the
//! grid cell that its point location belongs to.  In each grid cell, we
//! maintain an inverted list with the keywords of the objects stored in this
//! cell."
//!
//! [`GridIndex`] partitions the bounding extent into square cells of a
//! configurable size; each cell holds its objects' ids plus an
//! [`InvertedIndex`] backed by the paged B⁺-tree.

use crate::error::{GeoTextError, Result};
use crate::inverted::InvertedIndex;
use crate::object::{GeoTextObject, ObjectId};
use crate::vocab::{TermId, Vocabulary};
use lcmsr_roadnet::geo::{Point, Rect};
use std::collections::BTreeMap;

/// Identifier of a grid cell as (column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId {
    /// Column index (x direction).
    pub col: u32,
    /// Row index (y direction).
    pub row: u32,
}

/// One cell of the grid: the objects whose location falls inside it and the
/// cell-local inverted index over their keywords.
#[derive(Debug, Clone, Default)]
pub struct GridCell {
    /// Ids of the objects stored in this cell.
    pub objects: Vec<ObjectId>,
    /// Inverted lists over the cell's objects.
    pub inverted: InvertedIndex,
}

/// A uniform grid index over geo-textual objects.
#[derive(Debug, Clone)]
pub struct GridIndex {
    extent: Rect,
    cell_size: f64,
    cols: u32,
    rows: u32,
    cells: BTreeMap<CellId, GridCell>,
    object_count: usize,
}

impl GridIndex {
    /// Creates an empty grid over `extent` with square cells of `cell_size` metres.
    pub fn new(extent: Rect, cell_size: f64) -> Result<Self> {
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err(GeoTextError::InvalidGridConfig {
                message: format!("cell size must be positive, got {cell_size}"),
            });
        }
        if extent.width() <= 0.0 || extent.height() <= 0.0 {
            return Err(GeoTextError::InvalidGridConfig {
                message: "extent must have positive width and height".into(),
            });
        }
        let cols = (extent.width() / cell_size).ceil().max(1.0) as u32;
        let rows = (extent.height() / cell_size).ceil().max(1.0) as u32;
        Ok(GridIndex {
            extent,
            cell_size,
            cols,
            rows,
            cells: BTreeMap::new(),
            object_count: 0,
        })
    }

    /// The extent covered by the grid.
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// The configured cell size in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Grid dimensions as (columns, rows).
    pub fn dimensions(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    /// Number of cells that contain at least one object.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total number of indexed objects.
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// The cell id containing `p`, or `None` if `p` lies outside the extent.
    pub fn cell_of(&self, p: &Point) -> Option<CellId> {
        if !self.extent.contains(p) {
            return None;
        }
        let col = (((p.x - self.extent.min_x) / self.cell_size) as u32).min(self.cols - 1);
        let row = (((p.y - self.extent.min_y) / self.cell_size) as u32).min(self.rows - 1);
        Some(CellId { col, row })
    }

    /// Rectangle covered by a cell.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let min_x = self.extent.min_x + cell.col as f64 * self.cell_size;
        let min_y = self.extent.min_y + cell.row as f64 * self.cell_size;
        Rect::new(
            min_x,
            min_y,
            (min_x + self.cell_size).min(self.extent.max_x),
            (min_y + self.cell_size).min(self.extent.max_y),
        )
    }

    /// Inserts an object, interning its terms into `vocabulary`.
    ///
    /// Objects outside the grid extent or with non-finite coordinates are
    /// rejected; objects with empty descriptions are rejected as well since
    /// they can never contribute to a query result.
    pub fn insert(
        &mut self,
        vocabulary: &mut Vocabulary,
        object: &GeoTextObject,
    ) -> Result<CellId> {
        if !object.point.is_finite() {
            return Err(GeoTextError::InvalidLocation {
                object: object.id.0,
            });
        }
        if object.is_empty() {
            return Err(GeoTextError::EmptyDescription {
                object: object.id.0,
            });
        }
        let cell_id = self
            .cell_of(&object.point)
            .ok_or(GeoTextError::InvalidLocation {
                object: object.id.0,
            })?;
        let cell = self.cells.entry(cell_id).or_default();
        cell.objects.push(object.id);
        cell.inverted.add_object(vocabulary, object);
        self.object_count += 1;
        Ok(cell_id)
    }

    /// The cell with the given id, if it holds any objects.
    pub fn cell(&self, id: CellId) -> Option<&GridCell> {
        self.cells.get(&id)
    }

    /// Ids of the occupied cells whose rectangle intersects `rect`.
    pub fn cells_intersecting(&self, rect: &Rect) -> Vec<CellId> {
        let Some(clipped) = self.extent.intersection(rect) else {
            return Vec::new();
        };
        let col_lo =
            (((clipped.min_x - self.extent.min_x) / self.cell_size) as u32).min(self.cols - 1);
        let col_hi =
            (((clipped.max_x - self.extent.min_x) / self.cell_size) as u32).min(self.cols - 1);
        let row_lo =
            (((clipped.min_y - self.extent.min_y) / self.cell_size) as u32).min(self.rows - 1);
        let row_hi =
            (((clipped.max_y - self.extent.min_y) / self.cell_size) as u32).min(self.rows - 1);
        let mut out = Vec::new();
        for col in col_lo..=col_hi {
            for row in row_lo..=row_hi {
                let id = CellId { col, row };
                if self.cells.contains_key(&id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Accumulates Equation-2 partial scores `Σ w_{Q.ψ,t}·wto(t)` for every
    /// object located in a cell intersecting `rect`.  The caller divides by the
    /// query norm and filters objects that fall outside `rect` itself (cells
    /// only approximate the rectangle).
    pub fn accumulate_scores_in_rect(
        &self,
        rect: &Rect,
        query_terms: &[(TermId, f64)],
    ) -> BTreeMap<ObjectId, f64> {
        let mut acc = BTreeMap::new();
        for cell_id in self.cells_intersecting(rect) {
            if let Some(cell) = self.cells.get(&cell_id) {
                for (obj, partial) in cell.inverted.accumulate_scores(query_terms) {
                    *acc.entry(obj).or_insert(0.0) += partial;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_objects() -> Vec<GeoTextObject> {
        vec![
            GeoTextObject::from_keywords(0u64, Point::new(50.0, 50.0), ["restaurant"]),
            GeoTextObject::from_keywords(1u64, Point::new(150.0, 50.0), ["restaurant", "pizza"]),
            GeoTextObject::from_keywords(2u64, Point::new(950.0, 950.0), ["cafe"]),
            GeoTextObject::from_keywords(3u64, Point::new(450.0, 450.0), ["museum"]),
        ]
    }

    fn build_grid() -> (GridIndex, Vocabulary) {
        let extent = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut grid = GridIndex::new(extent, 100.0).unwrap();
        let mut vocab = Vocabulary::new();
        for o in make_objects() {
            vocab.register_document(o.terms.keys().map(String::as_str));
            grid.insert(&mut vocab, &o).unwrap();
        }
        (grid, vocab)
    }

    #[test]
    fn rejects_invalid_configuration() {
        let extent = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert!(GridIndex::new(extent, 0.0).is_err());
        assert!(GridIndex::new(extent, -5.0).is_err());
        assert!(GridIndex::new(Rect::new(0.0, 0.0, 0.0, 10.0), 10.0).is_err());
        assert!(GridIndex::new(extent, 10.0).is_ok());
    }

    #[test]
    fn grid_dimensions_cover_extent() {
        let grid = GridIndex::new(Rect::new(0.0, 0.0, 1050.0, 980.0), 100.0).unwrap();
        assert_eq!(grid.dimensions(), (11, 10));
        assert_eq!(grid.cell_size(), 100.0);
    }

    #[test]
    fn objects_land_in_expected_cells() {
        let (grid, _) = build_grid();
        assert_eq!(grid.object_count(), 4);
        assert_eq!(grid.occupied_cells(), 4);
        assert_eq!(
            grid.cell_of(&Point::new(50.0, 50.0)),
            Some(CellId { col: 0, row: 0 })
        );
        assert_eq!(
            grid.cell_of(&Point::new(150.0, 50.0)),
            Some(CellId { col: 1, row: 0 })
        );
        // A point exactly on the max boundary clamps into the last cell.
        assert_eq!(
            grid.cell_of(&Point::new(1000.0, 1000.0)),
            Some(CellId { col: 9, row: 9 })
        );
        assert_eq!(grid.cell_of(&Point::new(-1.0, 0.0)), None);
        let cell = grid.cell(CellId { col: 0, row: 0 }).unwrap();
        assert_eq!(cell.objects, vec![ObjectId(0)]);
        assert_eq!(cell.inverted.object_count(), 1);
    }

    #[test]
    fn cell_rect_tiles_the_extent() {
        let (grid, _) = build_grid();
        let r = grid.cell_rect(CellId { col: 1, row: 0 });
        assert_eq!(r, Rect::new(100.0, 0.0, 200.0, 100.0));
        let last = grid.cell_rect(CellId { col: 9, row: 9 });
        assert_eq!(last.max_x, 1000.0);
        assert_eq!(last.max_y, 1000.0);
    }

    #[test]
    fn rejects_bad_objects() {
        let (mut grid, mut vocab) = build_grid();
        let outside = GeoTextObject::from_keywords(10u64, Point::new(5000.0, 0.0), ["bar"]);
        assert!(matches!(
            grid.insert(&mut vocab, &outside),
            Err(GeoTextError::InvalidLocation { object: 10 })
        ));
        let empty =
            GeoTextObject::from_keywords(11u64, Point::new(10.0, 10.0), Vec::<String>::new());
        assert!(matches!(
            grid.insert(&mut vocab, &empty),
            Err(GeoTextError::EmptyDescription { object: 11 })
        ));
        let nan = GeoTextObject::from_keywords(12u64, Point::new(f64::NAN, 10.0), ["bar"]);
        assert!(matches!(
            grid.insert(&mut vocab, &nan),
            Err(GeoTextError::InvalidLocation { object: 12 })
        ));
    }

    #[test]
    fn cells_intersecting_finds_occupied_cells_only() {
        let (grid, _) = build_grid();
        let all = grid.cells_intersecting(&Rect::new(0.0, 0.0, 1000.0, 1000.0));
        assert_eq!(all.len(), 4);
        let corner = grid.cells_intersecting(&Rect::new(0.0, 0.0, 160.0, 90.0));
        assert_eq!(corner.len(), 2);
        let nothing = grid.cells_intersecting(&Rect::new(600.0, 0.0, 800.0, 200.0));
        assert!(nothing.is_empty());
        let outside = grid.cells_intersecting(&Rect::new(2000.0, 2000.0, 3000.0, 3000.0));
        assert!(outside.is_empty());
    }

    #[test]
    fn accumulate_scores_in_rect_limits_to_region() {
        let (grid, vocab) = build_grid();
        let restaurant = vocab.lookup("restaurant").unwrap();
        let terms = vec![(restaurant, vocab.idf(restaurant))];
        // Rectangle covering only the two restaurant cells.
        let acc = grid.accumulate_scores_in_rect(&Rect::new(0.0, 0.0, 200.0, 100.0), &terms);
        assert_eq!(acc.len(), 2);
        assert!(acc.contains_key(&ObjectId(0)));
        assert!(acc.contains_key(&ObjectId(1)));
        // Whole space: still only restaurant matches, cafe/museum do not appear.
        let acc_all = grid.accumulate_scores_in_rect(&Rect::new(0.0, 0.0, 1000.0, 1000.0), &terms);
        assert_eq!(acc_all.len(), 2);
        assert!(!acc_all.contains_key(&ObjectId(2)));
    }
}
