//! Geo-textual objects (points of interest with a textual description).

use lcmsr_roadnet::geo::Point;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a geo-textual object.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Returns the id as a usize suitable for indexing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

impl From<usize> for ObjectId {
    fn from(v: usize) -> Self {
        ObjectId(v as u64)
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A geo-textual object: a point of interest with a location and a textual
/// description given as term frequencies.
///
/// The paper's objects come from Google Places (name + category terms) and
/// Flickr (photo tags); both reduce to a bag of terms per object, which is what
/// the vector-space model consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoTextObject {
    /// Identifier of the object.
    pub id: ObjectId,
    /// Planar location of the object in metres (e.g. UTM).
    pub point: Point,
    /// Term → frequency map describing the object (`o.ψ` with `tf` counts).
    pub terms: BTreeMap<String, u32>,
    /// Optional popularity/rating attribute; available for the alternative
    /// scoring strategy described in Section 2 of the paper (score = rating if
    /// the object matches the query, 0 otherwise).
    pub rating: Option<f64>,
}

impl GeoTextObject {
    /// Creates an object from a list of keywords (each occurrence counts once).
    pub fn from_keywords(
        id: impl Into<ObjectId>,
        point: Point,
        keywords: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> Self {
        let mut terms = BTreeMap::new();
        for kw in keywords {
            let term = normalize_term(kw.as_ref());
            if term.is_empty() {
                continue;
            }
            *terms.entry(term).or_insert(0) += 1;
        }
        GeoTextObject {
            id: id.into(),
            point,
            terms,
            rating: None,
        }
    }

    /// Creates an object from an explicit term-frequency map.
    pub fn from_term_counts(
        id: impl Into<ObjectId>,
        point: Point,
        terms: BTreeMap<String, u32>,
    ) -> Self {
        GeoTextObject {
            id: id.into(),
            point,
            terms,
            rating: None,
        }
    }

    /// Sets the rating/popularity attribute, returning the modified object.
    pub fn with_rating(mut self, rating: f64) -> Self {
        self.rating = Some(rating);
        self
    }

    /// Number of distinct terms in the description.
    pub fn distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total number of term occurrences in the description.
    pub fn total_term_count(&self) -> u32 {
        self.terms.values().sum()
    }

    /// Frequency of `term` in the description (0 if absent).
    pub fn term_frequency(&self, term: &str) -> u32 {
        self.terms.get(&normalize_term(term)).copied().unwrap_or(0)
    }

    /// Whether the description contains `term`.
    pub fn contains_term(&self, term: &str) -> bool {
        self.term_frequency(term) > 0
    }

    /// Whether the description is empty (no terms).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Normalises a raw keyword: lowercases and trims surrounding whitespace and
/// punctuation so that "Restaurant," and "restaurant" are the same term.
pub fn normalize_term(raw: &str) -> String {
    raw.trim()
        .trim_matches(|c: char| c.is_ascii_punctuation())
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_basics() {
        assert_eq!(ObjectId::from(3u64).index(), 3);
        assert_eq!(ObjectId::from(4usize), ObjectId(4));
        assert_eq!(ObjectId(5).to_string(), "o5");
    }

    #[test]
    fn keywords_are_normalised_and_counted() {
        let o = GeoTextObject::from_keywords(
            1u64,
            Point::new(0.0, 0.0),
            ["Restaurant,", "italian", "restaurant", "  PIZZA  ", ""],
        );
        assert_eq!(o.term_frequency("restaurant"), 2);
        assert_eq!(o.term_frequency("pizza"), 1);
        assert_eq!(o.term_frequency("italian"), 1);
        assert_eq!(o.distinct_terms(), 3);
        assert_eq!(o.total_term_count(), 4);
        assert!(o.contains_term("Pizza"));
        assert!(!o.contains_term("sushi"));
        assert!(!o.is_empty());
    }

    #[test]
    fn empty_keyword_list_gives_empty_object() {
        let o = GeoTextObject::from_keywords(2u64, Point::new(0.0, 0.0), Vec::<String>::new());
        assert!(o.is_empty());
        assert_eq!(o.total_term_count(), 0);
    }

    #[test]
    fn term_counts_constructor_and_rating() {
        let mut terms = BTreeMap::new();
        terms.insert("cafe".to_string(), 3);
        let o = GeoTextObject::from_term_counts(7u64, Point::new(1.0, 2.0), terms).with_rating(4.5);
        assert_eq!(o.term_frequency("cafe"), 3);
        assert_eq!(o.rating, Some(4.5));
    }

    #[test]
    fn normalize_strips_punctuation_and_case() {
        assert_eq!(normalize_term("  Coffee!  "), "coffee");
        assert_eq!(normalize_term("BAR"), "bar");
        assert_eq!(normalize_term("...'"), "");
    }
}
