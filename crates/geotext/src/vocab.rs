//! Vocabulary: term interning and corpus-level document frequencies.
//!
//! The vector-space model of the paper (Equation 1) needs, for every term `t`,
//! the number of objects whose description contains `t` (`f_t`) and the total
//! number of objects `|D|`.  The vocabulary tracks both and interns terms into
//! dense [`TermId`]s so postings lists can store small integers.

use crate::object::normalize_term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dense identifier of an interned term.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TermId(pub u32);

impl TermId {
    /// Returns the id as a usize suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Corpus vocabulary: maps between term strings and [`TermId`]s and tracks the
/// document frequency `f_t` of every term.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    by_name: BTreeMap<String, TermId>,
    document_frequency: Vec<u32>,
    /// Total number of documents (objects) registered, `|D|` in Equation 1.
    document_count: u64,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total number of registered documents (`|D|`).
    pub fn document_count(&self) -> u64 {
        self.document_count
    }

    /// Interns `term` (normalising it first) and returns its id.
    pub fn intern(&mut self, term: &str) -> TermId {
        let norm = normalize_term(term);
        if let Some(&id) = self.by_name.get(&norm) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.by_name.insert(norm.clone(), id);
        self.terms.push(norm);
        self.document_frequency.push(0);
        id
    }

    /// Looks up the id of an existing term without interning.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.by_name.get(&normalize_term(term)).copied()
    }

    /// The string of a term id.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Document frequency `f_t` of a term.
    pub fn document_frequency(&self, id: TermId) -> u32 {
        self.document_frequency[id.index()]
    }

    /// Registers one document containing the given distinct terms, incrementing
    /// `|D|` and each term's document frequency.  Terms are interned on the fly.
    ///
    /// The caller is responsible for passing *distinct* terms of the document
    /// (duplicates would inflate `f_t`); `register_document` deduplicates
    /// defensively.
    pub fn register_document<'a>(
        &mut self,
        terms: impl IntoIterator<Item = &'a str>,
    ) -> Vec<TermId> {
        let mut ids: Vec<TermId> = terms.into_iter().map(|t| self.intern(t)).collect();
        ids.sort_unstable();
        ids.dedup();
        for &id in &ids {
            self.document_frequency[id.index()] += 1;
        }
        self.document_count += 1;
        ids
    }

    /// Inverse document frequency weight of a term as used by Equation 1:
    /// `w_{Q.ψ,t} = ln(1 + |D| / f_t)`.
    ///
    /// Returns 0 for terms that no document contains (the query term then
    /// contributes nothing, matching the sum over `Q.ψ ∩ o.ψ`).
    pub fn idf(&self, id: TermId) -> f64 {
        let ft = self.document_frequency(id);
        if ft == 0 {
            0.0
        } else {
            (1.0 + self.document_count as f64 / ft as f64).ln()
        }
    }

    /// Iterates over `(TermId, term, document_frequency)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, u32)> + '_ {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str(), self.document_frequency[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_normalising() {
        let mut v = Vocabulary::new();
        let a = v.intern("Restaurant");
        let b = v.intern("restaurant ");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.term(a), "restaurant");
        assert_eq!(v.lookup("RESTAURANT"), Some(a));
        assert_eq!(v.lookup("missing"), None);
        assert!(!v.is_empty());
    }

    #[test]
    fn register_document_updates_frequencies() {
        let mut v = Vocabulary::new();
        v.register_document(["cafe", "coffee"]);
        v.register_document(["cafe", "bar", "cafe"]); // duplicate deduplicated
        assert_eq!(v.document_count(), 2);
        let cafe = v.lookup("cafe").unwrap();
        let coffee = v.lookup("coffee").unwrap();
        let bar = v.lookup("bar").unwrap();
        assert_eq!(v.document_frequency(cafe), 2);
        assert_eq!(v.document_frequency(coffee), 1);
        assert_eq!(v.document_frequency(bar), 1);
    }

    #[test]
    fn idf_matches_equation_one() {
        let mut v = Vocabulary::new();
        v.register_document(["a"]);
        v.register_document(["a", "b"]);
        v.register_document(["c"]);
        let a = v.lookup("a").unwrap();
        let b = v.lookup("b").unwrap();
        // f_a = 2, |D| = 3 → ln(1 + 3/2); f_b = 1 → ln(1 + 3).
        assert!((v.idf(a) - (1.0f64 + 1.5).ln()).abs() < 1e-12);
        assert!((v.idf(b) - 4.0f64.ln()).abs() < 1e-12);
        // Rare terms get larger idf than common terms.
        assert!(v.idf(b) > v.idf(a));
    }

    #[test]
    fn idf_of_unseen_term_is_zero() {
        let mut v = Vocabulary::new();
        let t = v.intern("ghost"); // interned but never registered in a document
        assert_eq!(v.document_frequency(t), 0);
        assert_eq!(v.idf(t), 0.0);
    }

    #[test]
    fn iter_exposes_all_terms() {
        let mut v = Vocabulary::new();
        v.register_document(["x", "y"]);
        let collected: Vec<(String, u32)> = v
            .iter()
            .map(|(_, term, df)| (term.to_string(), df))
            .collect();
        assert_eq!(collected.len(), 2);
        assert!(collected.contains(&("x".to_string(), 1)));
    }
}
