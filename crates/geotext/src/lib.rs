//! # lcmsr-geotext
//!
//! Geo-textual object substrate for the LCMSR reproduction ("Retrieving
//! Regions of Interest for User Exploration", Cao et al., PVLDB 2014).
//!
//! The crate implements the indexing layer of Section 3 of the paper:
//!
//! * [`object::GeoTextObject`] — points of interest with term-frequency descriptions,
//! * [`vocab::Vocabulary`] — term interning and document frequencies,
//! * [`vsm`] — the TF–IDF vector-space relevance model (Equations 1 and 2),
//! * [`btree::BPlusTree`] — a paged B⁺-tree standing in for the paper's
//!   disk-based B⁺-tree holding the inverted lists,
//! * [`inverted::InvertedIndex`] — per-cell postings lists of `(object, wto(t))`,
//! * [`grid::GridIndex`] — the uniform spatial grid with one inverted index per cell,
//! * [`mapping`] — object → nearest-road-node mapping,
//! * [`collection::ObjectCollection`] — the assembled data set producing the
//!   per-node query weights (`σ_v`) consumed by `lcmsr-core`.
//!
//! # Example
//!
//! ```
//! use lcmsr_geotext::prelude::*;
//! use lcmsr_roadnet::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(Point::new(0.0, 0.0));
//! let c = b.add_node(Point::new(100.0, 0.0));
//! b.add_edge(a, c, 100.0).unwrap();
//! let network = b.build().unwrap();
//!
//! let objects = vec![
//!     GeoTextObject::from_keywords(0u64, Point::new(1.0, 1.0), ["restaurant"]),
//!     GeoTextObject::from_keywords(1u64, Point::new(99.0, 1.0), ["cafe"]),
//! ];
//! let collection = ObjectCollection::build(&network, objects, 50.0).unwrap();
//! let rect = network.bounding_rect().unwrap().expanded(10.0);
//! let weights = collection.node_weights_for_keywords(&["restaurant"], &rect);
//! assert_eq!(weights.relevant_node_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod collection;
pub mod error;
pub mod grid;
pub mod inverted;
pub mod mapping;
pub mod object;
pub mod vocab;
pub mod vsm;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::btree::BPlusTree;
    pub use crate::collection::{NodeWeights, ObjectCollection};
    pub use crate::error::{GeoTextError, Result as GeoTextResult};
    pub use crate::grid::GridIndex;
    pub use crate::inverted::{InvertedIndex, Posting};
    pub use crate::object::{GeoTextObject, ObjectId};
    pub use crate::vocab::{TermId, Vocabulary};
    pub use crate::vsm::QueryVector;
}

pub use collection::{NodeWeights, ObjectCollection};
pub use error::{GeoTextError, Result};
pub use object::{GeoTextObject, ObjectId};
pub use vocab::{TermId, Vocabulary};
pub use vsm::QueryVector;
