//! Fixture tests for every lint rule: each rule is exercised both firing and
//! silenced by an inline escape.  New rules must add their fixtures here (see
//! CONTRIBUTING.md).
//!
//! All lint trigger text below lives inside Rust *string literals*, which the
//! lexer classifies as `Str` tokens — so this file never lints itself.

use lcmsr_analysis::rules::{analyze_source, Rule};

/// Runs the analyzer and returns just the rule of each finding.
fn rules_in(path: &str, src: &str) -> Vec<Rule> {
    analyze_source(path, src.as_bytes())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_fires_on_hash_collections_in_solver_code() {
    let src = r#"
use std::collections::{HashMap, HashSet};
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
}
"#;
    let rules = rules_in("crates/core/src/fixture.rs", src);
    assert!(rules.iter().filter(|r| **r == Rule::Determinism).count() >= 2);
    // geotext is in scope too; bench code is not.
    assert!(rules_in("crates/geotext/src/fixture.rs", src).contains(&Rule::Determinism));
    assert!(!rules_in("crates/bench/src/fixture.rs", src).contains(&Rule::Determinism));
}

#[test]
fn determinism_is_escaped_with_a_reason() {
    let src = "
fn f() {
    // lcmsr-lint: allow(determinism) — keyed lookup only, order never observed
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let _ = m;
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::Determinism));
}

#[test]
fn determinism_ignores_trigger_words_in_comments_and_strings() {
    let src = r#"
// A HashMap would be wrong here.
fn f() -> &'static str {
    "HashMap and HashSet in a string"
}
"#;
    assert_eq!(rules_in("crates/core/src/fixture.rs", src), vec![]);
}

// ---------------------------------------------------------------------- clock

#[test]
fn clock_fires_on_raw_instant_now() {
    let src = "
fn f() {
    let _t = std::time::Instant::now();
    let _w = std::time::SystemTime::now();
}
";
    let rules = rules_in("crates/core/src/fixture.rs", src);
    assert_eq!(rules.iter().filter(|r| **r == Rule::Clock).count(), 2);
}

#[test]
fn clock_skips_audited_files_and_test_code() {
    let src = "
fn f() {
    let _t = std::time::Instant::now();
}
";
    assert!(!rules_in("crates/core/src/cancel.rs", src).contains(&Rule::Clock));
    assert!(!rules_in("crates/core/src/trace.rs", src).contains(&Rule::Clock));
    assert!(!rules_in("crates/service/src/scheduler.rs", src).contains(&Rule::Clock));
    let test_src = "
#[cfg(test)]
mod tests {
    fn f() {
        let _t = std::time::Instant::now();
    }
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", test_src).contains(&Rule::Clock));
}

#[test]
fn clock_is_escaped_with_a_reason() {
    let src = "
fn f() {
    // lcmsr-lint: allow(clock) — wall-clock logging only, never solver state
    let _t = std::time::Instant::now();
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::Clock));
}

// ----------------------------------------------------------------- panic_free

#[test]
fn panic_free_fires_on_unwrap_expect_and_panic_macros() {
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b > 3 {
        panic!("boom");
    }
    unreachable!()
}
"#;
    let rules = rules_in("crates/service/src/fixture.rs", src);
    assert_eq!(rules.iter().filter(|r| **r == Rule::PanicFree).count(), 4);
    // The rule only applies to the service crate.
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::PanicFree));
}

#[test]
fn panic_free_skips_test_code_and_lookalike_methods() {
    let test_src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
"#;
    assert!(!rules_in("crates/service/src/fixture.rs", test_src).contains(&Rule::PanicFree));
    // `unwrap_or`, `unwrap_or_else` and an own method `expect_byte` are fine.
    let lookalikes = r#"
fn f(x: Option<u32>, p: &mut Parser) -> Result<u32, E> {
    p.expect_byte(b'x')?;
    Ok(x.unwrap_or(0) + x.unwrap_or_else(|| 1))
}
"#;
    assert!(!rules_in("crates/service/src/fixture.rs", lookalikes).contains(&Rule::PanicFree));
}

#[test]
fn panic_free_is_escaped_with_a_reason() {
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    // lcmsr-lint: allow(panic_free) — invariant: caller checked is_some()
    x.unwrap()
}
"#;
    assert!(!rules_in("crates/service/src/fixture.rs", src).contains(&Rule::PanicFree));
}

// -------------------------------------------------------------- unsafe_safety

#[test]
fn unsafe_safety_fires_without_a_safety_comment() {
    let src = "
fn f(p: *const u32) -> u32 {
    unsafe { *p }
}
";
    assert!(rules_in("crates/core/src/fixture.rs", src).contains(&Rule::UnsafeSafety));
}

#[test]
fn unsafe_safety_accepts_a_safety_comment() {
    let src = "
fn f(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer derived from a live reference.
    unsafe { *p }
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::UnsafeSafety));
}

#[test]
fn unsafe_safety_is_escaped_with_a_reason() {
    let src = "
fn f(p: *const u32) -> u32 {
    // lcmsr-lint: allow(unsafe_safety) — fixture exercising the escape hatch
    unsafe { *p }
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::UnsafeSafety));
}

// --------------------------------------------------------------- lock_nesting

#[test]
fn lock_nesting_fires_on_a_second_acquisition() {
    let src = "
fn f(m: &std::sync::Mutex<u32>) {
    let a = *m.lock().unwrap_or_else(|e| e.into_inner());
    let b = *m.lock().unwrap_or_else(|e| e.into_inner());
    let _ = a + b;
}
";
    assert!(rules_in("crates/core/src/fixture.rs", src).contains(&Rule::LockNesting));
}

#[test]
fn lock_nesting_counts_the_poison_recovery_helper() {
    let src = "
fn f(m: &std::sync::Mutex<u32>) {
    let a = *lock_or_recover(m);
    let b = *lock_or_recover(m);
    let _ = a + b;
}
";
    assert!(rules_in("crates/service/src/fixture.rs", src).contains(&Rule::LockNesting));
}

#[test]
fn lock_nesting_allows_one_acquisition_per_function() {
    let src = "
fn f(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}
fn g(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::LockNesting));
}

#[test]
fn lock_nesting_is_escaped_with_a_reason() {
    let src = "
fn f(m: &std::sync::Mutex<u32>) {
    { let _a = lock_or_recover(m); }
    // lcmsr-lint: allow(lock_nesting) — first guard died at its block's end
    let _b = lock_or_recover(m);
}
";
    assert!(!rules_in("crates/service/src/fixture.rs", src).contains(&Rule::LockNesting));
}

// ------------------------------------------------------------------ cache_key

#[test]
fn cache_key_fires_on_raw_to_bits_in_core_and_service() {
    let src = "
fn fingerprint(x: f64) -> u64 {
    x.to_bits()
}
";
    assert!(rules_in("crates/core/src/fixture.rs", src).contains(&Rule::CacheKey));
    assert!(rules_in("crates/service/src/fixture.rs", src).contains(&Rule::CacheKey));
    // Out of scope: other crates, and the audited fingerprint modules that
    // own the canonicalizers.
    assert!(!rules_in("crates/bench/src/fixture.rs", src).contains(&Rule::CacheKey));
    assert!(!rules_in("crates/core/src/cache.rs", src).contains(&Rule::CacheKey));
    assert!(!rules_in("crates/core/src/kmst/garg.rs", src).contains(&Rule::CacheKey));
}

#[test]
fn cache_key_skips_test_code_and_non_method_uses() {
    let src = "
fn f() -> u64 {
    to_bits(1.0)
}
#[cfg(test)]
mod tests {
    fn t(x: f64) -> u64 { x.to_bits() }
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::CacheKey));
}

#[test]
fn cache_key_is_escaped_with_a_reason() {
    let src = "
fn fingerprint(x: f64) -> u64 {
    // lcmsr-lint: allow(cache_key) — caller already folded the sign
    x.to_bits()
}
";
    assert!(!rules_in("crates/core/src/fixture.rs", src).contains(&Rule::CacheKey));
}

// --------------------------------------------------------------------- escape

#[test]
fn escape_without_a_reason_is_itself_a_finding() {
    let src = "
fn f() {
    // lcmsr-lint: allow(determinism)
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let _ = m;
}
";
    let findings = analyze_source("crates/core/src/fixture.rs", src.as_bytes());
    // The reasonless escape does not silence the finding, and is reported.
    assert!(findings.iter().any(|f| f.rule == Rule::Escape));
    assert!(findings.iter().any(|f| f.rule == Rule::Determinism));
}

#[test]
fn escape_naming_an_unknown_rule_is_reported() {
    let src = "
fn f() {
    // lcmsr-lint: allow(determinsim) — typo'd rule name
    let _x = 1;
}
";
    let findings = analyze_source("crates/core/src/fixture.rs", src.as_bytes());
    assert!(findings
        .iter()
        .any(|f| f.rule == Rule::Escape && f.message.contains("determinsim")));
}

#[test]
fn escape_covers_code_after_a_multi_line_explanation() {
    let src = "
fn f() {
    // lcmsr-lint: allow(determinism) — the map is drained through a sorted
    // collection before anything order-sensitive reads it, so iteration
    // order cannot leak into results.
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let _ = m;
}
";
    assert_eq!(rules_in("crates/core/src/fixture.rs", src), vec![]);
}

#[test]
fn trailing_escape_on_the_finding_line_works() {
    let src = "
fn f() {
    let m: std::collections::HashMap<u32, u32> = Default::default(); // lcmsr-lint: allow(determinism) — fixture
    let _ = m;
}
";
    assert_eq!(rules_in("crates/core/src/fixture.rs", src), vec![]);
}
