//! Property tests for the lint lexer and analyzer: totality over arbitrary
//! bytes, exact span tiling, and containment of trigger words inside
//! comments and string literals.

use lcmsr_analysis::lexer::{lex, TokenKind};
use lcmsr_analysis::rules::analyze_source;
use proptest::prelude::*;

/// Bytes biased toward lexer-interesting characters so random inputs actually
/// hit string/comment/char-literal machinery, not just ASCII noise.
fn decode_byte(choice: u16) -> u8 {
    const INTERESTING: &[u8] = b"\"'/r#b\\\n{}().; *!azHM_09\xc3\xa9\xff";
    let choice = choice as usize;
    if choice < INTERESTING.len() * 8 {
        INTERESTING[choice % INTERESTING.len()]
    } else {
        (choice % 256) as u8
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer must be total: no panic, no infinite loop, on any byte soup.
    #[test]
    fn lexing_arbitrary_bytes_never_panics(
        choices in collection::vec(0u16..512, 0..300),
    ) {
        let src: Vec<u8> = choices.into_iter().map(decode_byte).collect();
        let _ = lex(&src);
    }

    /// Token spans tile the input exactly: start at 0, end at len, no gaps,
    /// no overlaps, every token non-empty.
    #[test]
    fn token_spans_tile_the_input(
        choices in collection::vec(0u16..512, 0..300),
    ) {
        let src: Vec<u8> = choices.into_iter().map(decode_byte).collect();
        let tokens = lex(&src);
        let mut cursor = 0usize;
        for token in &tokens {
            prop_assert_eq!(token.start, cursor, "gap or overlap before a token");
            prop_assert!(token.end > token.start, "empty token");
            cursor = token.end;
        }
        prop_assert_eq!(cursor, src.len(), "tokens must cover the whole input");
    }

    /// Line numbers are monotone and match the newline count seen so far.
    #[test]
    fn line_numbers_are_monotone(
        choices in collection::vec(0u16..512, 0..300),
    ) {
        let src: Vec<u8> = choices.into_iter().map(decode_byte).collect();
        let mut previous = 1u32;
        for token in lex(&src) {
            let newlines_before =
                src[..token.start].iter().filter(|&&b| b == b'\n').count() as u32;
            prop_assert_eq!(token.line, newlines_before + 1);
            prop_assert!(token.line >= previous);
            previous = token.line;
        }
    }

    /// The analyzer as a whole is total on arbitrary bytes, too.
    #[test]
    fn analyzing_arbitrary_bytes_never_panics(
        choices in collection::vec(0u16..512, 0..300),
    ) {
        let src: Vec<u8> = choices.into_iter().map(decode_byte).collect();
        let _ = analyze_source("crates/core/src/fuzz.rs", &src);
        let _ = analyze_source("crates/service/src/fuzz.rs", &src);
    }

    /// Trigger words wrapped in comments or string literals never produce
    /// findings, for any combination of rule scope and container.
    #[test]
    fn trigger_words_in_comments_and_strings_are_inert(
        which in 0usize..5,
        container in 0usize..4,
    ) {
        let trigger = [
            "HashMap::new()",
            "Instant::now()",
            ".unwrap()",
            "unsafe {",
            ".lock() and .lock()",
        ][which];
        let wrapped = match container {
            0 => format!("// {trigger}\n"),
            1 => format!("/* {trigger} */\n"),
            2 => format!("fn f() -> &'static str {{ \"{trigger}\" }}\n"),
            _ => format!("fn f() -> &'static str {{ r#\"{trigger}\"# }}\n"),
        };
        for path in ["crates/core/src/fuzz.rs", "crates/service/src/fuzz.rs"] {
            let findings = analyze_source(path, wrapped.as_bytes());
            prop_assert!(
                findings.is_empty(),
                "contained trigger {:?} via container {} leaked findings {:?}",
                trigger,
                container,
                findings
            );
        }
    }
}

/// Tokens classified as comments/strings must reproduce their source bytes
/// exactly (a spot check that spans point at the right bytes).
#[test]
fn token_text_matches_spans() {
    let src = br#"let s = "str // not a comment"; // real comment"#;
    let tokens = lex(src);
    let strings: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strings.len(), 1);
    assert_eq!(
        &src[strings[0].start..strings[0].end],
        br#""str // not a comment""#
    );
    let comments: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::LineComment)
        .collect();
    assert_eq!(comments.len(), 1);
    assert_eq!(&src[comments[0].start..comments[0].end], b"// real comment");
}
