//! `lcmsr-lint` — the CLI for the repo-invariant static-analysis pass.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lcmsr-lint check [--root <dir>] [--format text|json]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "check" {
        eprintln!("unknown command '{command}'\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    while let Some(arg) = args.next() {
        let mut take_value = |inline: Option<&str>| match inline {
            Some(v) => Some(v.to_string()),
            None => args.next(),
        };
        if arg == "--root" || arg.starts_with("--root=") {
            match take_value(arg.strip_prefix("--root=")) {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--format" || arg.starts_with("--format=") {
            match take_value(arg.strip_prefix("--format=")) {
                Some(v) if v == "text" || v == "json" => format = v,
                _ => {
                    eprintln!("--format must be 'text' or 'json'\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else {
            eprintln!("unknown argument '{arg}'\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    // Default to the workspace root: `cargo run -p lcmsr-analysis` sets the
    // cwd to wherever the user is, so prefer the manifest's grandparent when
    // no explicit root was given and the cwd has no crates/ directory.
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or(cwd)
        }
    });

    match lcmsr_analysis::analyze_repo(&root) {
        Ok(findings) => {
            let report = if format == "json" {
                lcmsr_analysis::render_json(&findings)
            } else {
                lcmsr_analysis::render_text(&findings)
            };
            print!("{report}");
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("lcmsr-lint: {e}");
            ExitCode::from(2)
        }
    }
}
