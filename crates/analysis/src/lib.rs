//! `lcmsr-analysis` — repo-invariant static analysis for the LCMSR workspace.
//!
//! The binary (`lcmsr-lint`) walks the repository's Rust sources through a
//! from-scratch token-level lexer ([`lexer`]) and a small rule engine
//! ([`rules`]) that checks the invariants the codebase's correctness
//! arguments rest on: deterministic collections in solver code, audited
//! clocks, panic-free serving, `SAFETY:`-documented unsafe, and
//! single-`.lock()` function bodies.  See README.md § "Static analysis" for
//! the rule catalogue and the escape-hatch policy.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p lcmsr-analysis -- check [--root <repo>] [--format json]
//! ```

pub mod lexer;
pub mod rules;

use rules::Finding;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, vendored dependency stubs (not
/// repo code), and VCS metadata.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", ".github"];

/// Collects every `.rs` file under `root` (sorted, repo-relative paths).
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Analyzes the whole repository rooted at `root`.
pub fn analyze_repo(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in rust_files(root)? {
        let relative = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read(&path)?;
        findings.extend(rules::analyze_source(&relative, &source));
    }
    Ok(findings)
}

/// Renders findings as line-oriented human diagnostics.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: {}: {}\n",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        ));
    }
    out.push_str(&format!(
        "{} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON report (for the CI gate artifact).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.name(),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"total\": {}\n}}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Rule;

    #[test]
    fn json_report_shape() {
        let findings = vec![Finding {
            rule: Rule::Clock,
            file: "crates/core/src/engine.rs".into(),
            line: 7,
            message: "raw \"clock\"".into(),
        }];
        let json = render_json(&findings);
        assert!(json.contains("\"total\": 1"), "{json}");
        assert!(json.contains("\\\"clock\\\""), "{json}");
        assert!(render_json(&[]).contains("\"total\": 0"));
    }

    #[test]
    fn text_report_counts() {
        assert!(render_text(&[]).contains("0 findings"));
    }
}
