//! The lint rules and the per-file analysis driver.
//!
//! Every rule is a *repo invariant*: a property the LCMSR codebase promises
//! (bit-identical output, panic-free serving, audited clocks, safe unsafe,
//! deadlock-free locking) that plain `rustc`/`clippy` cannot check because it
//! is about *this* repo's architecture, not the language.
//!
//! A finding can be silenced inline with an explicit, reasoned escape:
//!
//! ```text
//! // lcmsr-lint: allow(clock) — bench-only wall-clock display
//! ```
//!
//! on the finding's line or the line directly above it.  An escape without a
//! reason is itself reported (`escape` rule) — the policy is "explain it or
//! fix it", never silent baselining.

use crate::lexer::{lex, text, Token, TokenKind};

/// Stable identifiers for the rules (the names used in `allow(…)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `HashMap`/`HashSet` in deterministic solver code.
    Determinism,
    /// `Instant::now()`/`SystemTime::now()` outside the audited clock files.
    Clock,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in serving code.
    PanicFree,
    /// `unsafe` block or impl without a `// SAFETY:` comment.
    UnsafeSafety,
    /// Two `.lock()` acquisitions inside one function body.
    LockNesting,
    /// Raw `.to_bits()` float fingerprinting outside the audited cache-key
    /// modules (bypasses `canon_f64`'s signed-zero folding).
    CacheKey,
    /// An escape comment with no reason, or naming no known rule.
    Escape,
}

impl Rule {
    /// The name accepted inside `allow(...)` and printed in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Clock => "clock",
            Rule::PanicFree => "panic_free",
            Rule::UnsafeSafety => "unsafe_safety",
            Rule::LockNesting => "lock_nesting",
            Rule::CacheKey => "cache_key",
            Rule::Escape => "escape",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "clock" => Some(Rule::Clock),
            "panic_free" => Some(Rule::PanicFree),
            "unsafe_safety" => Some(Rule::UnsafeSafety),
            "lock_nesting" => Some(Rule::LockNesting),
            "cache_key" => Some(Rule::CacheKey),
            "escape" => Some(Rule::Escape),
            _ => None,
        }
    }

    /// Every real rule (excludes the meta `escape` rule).
    pub const ALL: [Rule; 6] = [
        Rule::Determinism,
        Rule::Clock,
        Rule::PanicFree,
        Rule::UnsafeSafety,
        Rule::LockNesting,
        Rule::CacheKey,
    ];
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// Which rules run on a file, from its repo-relative path.
///
/// Scope policy (the rule catalogue in README.md documents the why):
///
/// * `determinism` — the deterministic solve path: `crates/core/src` and
///   `crates/geotext/src`, test code included (tests feed golden snapshots).
/// * `clock` — all `crates/*/src` except the audited clock files
///   (`core/src/{cancel,trace}.rs`, `service/src/{scheduler,metrics,http}.rs`) and
///   the bench crate; `#[cfg(test)]` code may use clocks freely.
/// * `panic_free` — `crates/service/src` non-test code.
/// * `unsafe_safety` — everywhere.
/// * `lock_nesting` — all `crates/*/src` non-test code.
/// * `cache_key` — `crates/core/src` and `crates/service/src` non-test code,
///   except the audited fingerprint modules (`core/src/cache.rs`, which owns
///   `canon_f64`, and `core/src/kmst/garg.rs`, whose λ memo table is keyed by
///   values the solver itself produced — never request floats).
fn rules_for(path: &str) -> Vec<Rule> {
    let mut rules = vec![Rule::UnsafeSafety];
    let in_crate_src = path.starts_with("crates/") && path.contains("/src/");
    if path.starts_with("crates/core/src/") || path.starts_with("crates/geotext/src/") {
        rules.push(Rule::Determinism);
    }
    const CLOCK_AUDITED: [&str; 5] = [
        "crates/core/src/cancel.rs",
        "crates/core/src/trace.rs",
        "crates/service/src/scheduler.rs",
        "crates/service/src/metrics.rs",
        "crates/service/src/http.rs",
    ];
    if in_crate_src && !path.starts_with("crates/bench/") && !CLOCK_AUDITED.contains(&path) {
        rules.push(Rule::Clock);
    }
    if path.starts_with("crates/service/src/") {
        rules.push(Rule::PanicFree);
    }
    if in_crate_src {
        rules.push(Rule::LockNesting);
    }
    const CACHE_KEY_AUDITED: [&str; 2] =
        ["crates/core/src/cache.rs", "crates/core/src/kmst/garg.rs"];
    if (path.starts_with("crates/core/src/") || path.starts_with("crates/service/src/"))
        && !CACHE_KEY_AUDITED.contains(&path)
    {
        rules.push(Rule::CacheKey);
    }
    rules
}

/// An inline escape parsed out of a comment (the `lcmsr-lint:` marker
/// followed by an `allow` list and a mandatory reason).
struct EscapeComment {
    line: u32,
    rules: Vec<Rule>,
    has_reason: bool,
    /// Unknown rule names inside `allow(…)` (reported: a typo would
    /// otherwise silently disable nothing while looking authoritative).
    unknown: Vec<String>,
}

fn parse_escape(token: &Token, src: &[u8]) -> Option<EscapeComment> {
    let body = String::from_utf8_lossy(text(src, token));
    let at = body.find("lcmsr-lint:")?;
    let rest = body[at + "lcmsr-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (names, after) = rest.split_once(')')?;
    let mut rules = Vec::new();
    let mut unknown = Vec::new();
    for name in names.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match Rule::from_name(name) {
            Some(rule) => rules.push(rule),
            None => unknown.push(name.to_string()),
        }
    }
    // The reason is whatever follows the closing paren, minus separator
    // punctuation (`—`, `–`, `-`, `:`).
    let reason = after
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim();
    Some(EscapeComment {
        line: token.line,
        rules,
        has_reason: !reason.is_empty(),
        unknown,
    })
}

/// Byte ranges covered by `#[cfg(test)]` items (the attribute's target item,
/// through its closing `}` or `;`).
fn cfg_test_ranges(tokens: &[Token], src: &[u8]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].kind != TokenKind::Punct(b'#') {
            i += 1;
            continue;
        }
        // Parse one `#[...]` attribute, remembering whether it is cfg(test).
        let Some(open) = code.get(i + 1).filter(|t| t.kind == TokenKind::Punct(b'[')) else {
            i += 1;
            continue;
        };
        let _ = open;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < code.len() {
            match code[j].kind {
                TokenKind::Punct(b'[') => depth += 1,
                TokenKind::Punct(b']') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident => {
                    let t = text(src, code[j]);
                    saw_cfg |= t == b"cfg";
                    saw_test |= t == b"test";
                }
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) || j >= code.len() {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes on the same item, then consume the item
        // through its closing `}` (mod/fn) or `;` (use, etc.).
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].kind == TokenKind::Punct(b'#') {
            let mut depth = 0usize;
            let mut m = k + 1;
            while m < code.len() {
                match code[m].kind {
                    TokenKind::Punct(b'[') => depth += 1,
                    TokenKind::Punct(b']') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
        }
        let item_start = code[i].start;
        let mut braces = 0usize;
        let mut entered = false;
        let mut end = src.len();
        while k < code.len() {
            match code[k].kind {
                TokenKind::Punct(b'{') => {
                    braces += 1;
                    entered = true;
                }
                TokenKind::Punct(b'}') => {
                    braces = braces.saturating_sub(1);
                    if entered && braces == 0 {
                        end = code[k].end;
                        break;
                    }
                }
                TokenKind::Punct(b';') if !entered => {
                    end = code[k].end;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        ranges.push((item_start, end));
        i = k + 1;
    }
    ranges
}

/// The per-file analysis context handed to each rule.
struct FileContext<'a> {
    path: &'a str,
    src: &'a [u8],
    /// All tokens, comments and whitespace included.
    tokens: &'a [Token],
    /// Indices into `tokens` of code tokens only (no comments/whitespace).
    code: Vec<usize>,
    test_ranges: Vec<(usize, usize)>,
}

impl FileContext<'_> {
    fn in_test(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    fn code_token(&self, code_idx: usize) -> Option<&Token> {
        self.code.get(code_idx).map(|&i| &self.tokens[i])
    }

    fn ident_at(&self, code_idx: usize) -> Option<&[u8]> {
        let t = self.code_token(code_idx)?;
        (t.kind == TokenKind::Ident).then(|| text(self.src, t))
    }

    fn punct_at(&self, code_idx: usize, p: u8) -> bool {
        self.code_token(code_idx)
            .is_some_and(|t| t.kind == TokenKind::Punct(p))
    }
}

/// Analyzes one file's source, returning its findings (escapes applied).
pub fn analyze_source(path: &str, src: &[u8]) -> Vec<Finding> {
    let tokens = lex(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect();
    let test_ranges = cfg_test_ranges(&tokens, src);
    let ctx = FileContext {
        path,
        src,
        tokens: &tokens,
        code,
        test_ranges,
    };

    let active = rules_for(path);
    let mut findings = Vec::new();
    for rule in &active {
        match rule {
            Rule::Determinism => check_determinism(&ctx, &mut findings),
            Rule::Clock => check_clock(&ctx, &mut findings),
            Rule::PanicFree => check_panic_free(&ctx, &mut findings),
            Rule::UnsafeSafety => check_unsafe_safety(&ctx, &mut findings),
            Rule::LockNesting => check_lock_nesting(&ctx, &mut findings),
            Rule::CacheKey => check_cache_key(&ctx, &mut findings),
            Rule::Escape => {}
        }
    }

    apply_escapes(&ctx, findings)
}

/// Filters findings through the file's escape comments and reports malformed
/// escapes as findings of their own.
fn apply_escapes(ctx: &FileContext<'_>, findings: Vec<Finding>) -> Vec<Finding> {
    let mut escapes = Vec::new();
    let mut out = Vec::new();
    for (ti, token) in ctx.tokens.iter().enumerate() {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(escape) = parse_escape(token, ctx.src) else {
            continue;
        };
        // The line the escape covers besides its own: the line of the next
        // non-comment token, so a multi-line explanation between the escape
        // and the code it excuses does not break the association.
        let mut covers = escape.line;
        let mut j = ti + 1;
        while let Some(next) = ctx.tokens.get(j) {
            match next.kind {
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment => j += 1,
                _ => {
                    covers = next.line;
                    break;
                }
            }
        }
        for name in &escape.unknown {
            out.push(Finding {
                rule: Rule::Escape,
                file: ctx.path.to_string(),
                line: escape.line,
                message: format!("escape names unknown rule '{name}'"),
            });
        }
        if !escape.has_reason {
            out.push(Finding {
                rule: Rule::Escape,
                file: ctx.path.to_string(),
                line: escape.line,
                message: "escape has no reason; write `lcmsr-lint: allow(<rule>) — <why>`".into(),
            });
        }
        escapes.push((escape, covers));
    }
    // An escape covers findings on its own line (a trailing comment) and on
    // the first code line after it (a comment directly above the code).
    for finding in findings {
        let escaped = escapes.iter().any(|(e, covers)| {
            e.rules.contains(&finding.rule)
                && e.has_reason
                && (e.line == finding.line || *covers == finding.line)
        });
        if !escaped {
            out.push(finding);
        }
    }
    out.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

fn push(ctx: &FileContext<'_>, out: &mut Vec<Finding>, rule: Rule, token: &Token, message: String) {
    out.push(Finding {
        rule,
        file: ctx.path.to_string(),
        line: token.line,
        message,
    });
}

/// determinism: no `HashMap`/`HashSet` identifiers — iteration order leaks
/// into float summation and tie-breaks (the PR 2 bug class, fixed twice).
fn check_determinism(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for idx in 0..ctx.code.len() {
        let Some(name) = ctx.ident_at(idx) else {
            continue;
        };
        if name == b"HashMap" || name == b"HashSet" {
            let token = ctx.code_token(idx).expect("ident_at checked");
            push(
                ctx,
                out,
                Rule::Determinism,
                token,
                format!(
                    "{} in deterministic solver code: iteration order is random per process; \
                     use BTreeMap/BTreeSet or a sorted Vec",
                    String::from_utf8_lossy(name)
                ),
            );
        }
    }
}

/// clock: no raw `Instant::now()`/`SystemTime::now()` outside the audited
/// clock files — deadline arithmetic must flow through `core::cancel` (and
/// serving metrics through `service::metrics`) so anytime-query promptness
/// stays auditable.
fn check_clock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for idx in 0..ctx.code.len().saturating_sub(3) {
        let Some(head) = ctx.ident_at(idx) else {
            continue;
        };
        if head != b"Instant" && head != b"SystemTime" {
            continue;
        }
        if !(ctx.punct_at(idx + 1, b':') && ctx.punct_at(idx + 2, b':')) {
            continue;
        }
        if ctx.ident_at(idx + 3) != Some(b"now".as_slice()) {
            continue;
        }
        let token = ctx.code_token(idx).expect("ident_at checked");
        if ctx.in_test(token.start) {
            continue;
        }
        push(
            ctx,
            out,
            Rule::Clock,
            token,
            format!(
                "raw {}::now() outside the audited clock modules; use core::cancel::now() \
                 (solver paths) or service::metrics::now() (serving paths)",
                String::from_utf8_lossy(head)
            ),
        );
    }
}

/// panic_free: serving code answers with 4xx/5xx, never a panic — a panicking
/// worker poisons locks and kills keep-alive connections for everyone.
fn check_panic_free(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for idx in 0..ctx.code.len() {
        let Some(name) = ctx.ident_at(idx) else {
            continue;
        };
        let token = ctx.code_token(idx).expect("ident_at checked");
        if ctx.in_test(token.start) {
            continue;
        }
        let method_call = |ctx: &FileContext<'_>| {
            idx > 0 && ctx.punct_at(idx - 1, b'.') && ctx.punct_at(idx + 1, b'(')
        };
        match name {
            b"unwrap" | b"expect" if method_call(ctx) => {
                push(
                    ctx,
                    out,
                    Rule::PanicFree,
                    token,
                    format!(
                        ".{}() in serving code; return an error (4xx/5xx) or recover instead",
                        String::from_utf8_lossy(name)
                    ),
                );
            }
            b"panic" | b"unreachable" | b"todo" | b"unimplemented"
                if ctx.punct_at(idx + 1, b'!') =>
            {
                push(
                    ctx,
                    out,
                    Rule::PanicFree,
                    token,
                    format!(
                        "{}! in serving code; return an error (4xx/5xx) instead",
                        String::from_utf8_lossy(name)
                    ),
                );
            }
            _ => {}
        }
    }
}

/// unsafe_safety: every `unsafe` block or impl carries a `// SAFETY:` comment
/// directly above it stating the proof obligation it discharges.
fn check_unsafe_safety(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for idx in 0..ctx.code.len() {
        if ctx.ident_at(idx) != Some(b"unsafe".as_slice()) {
            continue;
        }
        let is_block = ctx.punct_at(idx + 1, b'{');
        let is_impl = ctx.ident_at(idx + 1) == Some(b"impl".as_slice());
        if !is_block && !is_impl {
            continue; // `unsafe fn` declarations are the caller's obligation
        }
        let token = ctx.code_token(idx).expect("checked unsafe ident");
        // Look for a SAFETY: comment among the raw tokens directly preceding
        // the `unsafe` keyword (whitespace-separated comments allowed).
        let raw_idx = ctx
            .tokens
            .iter()
            .position(|t| t.start == token.start)
            .unwrap_or(0);
        let mut documented = false;
        for t in ctx.tokens[..raw_idx].iter().rev() {
            match t.kind {
                TokenKind::Whitespace => continue,
                TokenKind::LineComment | TokenKind::BlockComment => {
                    let body = text(ctx.src, t);
                    documented = body.windows(7).any(|w| w == b"SAFETY:");
                    break;
                }
                _ => break,
            }
        }
        if !documented {
            push(
                ctx,
                out,
                Rule::UnsafeSafety,
                token,
                format!(
                    "unsafe {} without a `// SAFETY:` comment directly above it",
                    if is_block { "block" } else { "impl" }
                ),
            );
        }
    }
}

/// lock_nesting: a function body acquiring `.lock()` twice is the static
/// shape of the register-vs-shutdown deadlock class (PR 4) — each site must
/// either be split up or carry an escape explaining why the guards cannot
/// overlap (or why a consistent acquisition order holds).
fn check_lock_nesting(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < ctx.code.len() {
        if ctx.ident_at(i) != Some(b"fn".as_slice()) {
            i += 1;
            continue;
        }
        // Find the body's opening brace: the first `{` at zero paren/bracket
        // depth after the `fn` keyword (a `;` first means no body).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut body_open = None;
        while j < ctx.code.len() {
            match ctx.code_token(j).map(|t| t.kind) {
                Some(TokenKind::Punct(b'(' | b'[')) => depth += 1,
                Some(TokenKind::Punct(b')' | b']')) => depth -= 1,
                Some(TokenKind::Punct(b'{')) if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                Some(TokenKind::Punct(b';')) if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        // Scan the body (to the matching `}`), counting lock acquisitions:
        // `.lock(` method calls and `lock_or_recover(` helper calls (the
        // service's poison-tolerant wrapper must not hide a double-lock).
        let mut braces = 0i32;
        let mut k = open;
        let mut locks: Vec<usize> = Vec::new();
        while k < ctx.code.len() {
            match ctx.code_token(k).map(|t| t.kind) {
                Some(TokenKind::Punct(b'{')) => braces += 1,
                Some(TokenKind::Punct(b'}')) => {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                Some(TokenKind::Ident)
                    if ctx.ident_at(k) == Some(b"lock".as_slice())
                        && k > 0
                        && ctx.punct_at(k - 1, b'.')
                        && ctx.punct_at(k + 1, b'(') =>
                {
                    locks.push(k);
                }
                Some(TokenKind::Ident)
                    if ctx.ident_at(k) == Some(b"lock_or_recover".as_slice())
                        && ctx.punct_at(k + 1, b'(') =>
                {
                    locks.push(k);
                }
                _ => {}
            }
            k += 1;
        }
        for &site in locks.iter().skip(1) {
            let token = ctx.code_token(site).expect("lock site recorded");
            if ctx.in_test(token.start) {
                continue;
            }
            push(
                ctx,
                out,
                Rule::LockNesting,
                token,
                "second lock acquisition in one function body (deadlock-shape audit); split \
                 the function or escape with the reason the guards cannot overlap"
                    .to_string(),
            );
        }
        i = k + 1;
    }
}

/// cache_key: response-cache keys must fold `-0.0` to `0.0` before bit-level
/// fingerprinting, or two requests for the same rectangle land in different
/// cache slots.  Raw `.to_bits()` on request-derived floats is the static
/// shape of that bug, so outside the audited fingerprint modules every call
/// site must either go through `core::cache::canon_f64` /
/// `core::cache::request_key` or carry an escape saying why its float can
/// never be a negative zero.
fn check_cache_key(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for idx in 1..ctx.code.len() {
        if ctx.ident_at(idx) != Some(b"to_bits".as_slice()) {
            continue;
        }
        if !(ctx.punct_at(idx - 1, b'.') && ctx.punct_at(idx + 1, b'(')) {
            continue;
        }
        let token = ctx.code_token(idx).expect("ident_at checked");
        if ctx.in_test(token.start) {
            continue;
        }
        push(
            ctx,
            out,
            Rule::CacheKey,
            token,
            "raw .to_bits() outside the audited fingerprint modules; -0.0 and 0.0 get \
             different bits — use core::cache::canon_f64 (or request_key) first"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_for_scopes_paths() {
        let names = |path: &str| {
            let mut v: Vec<&str> = rules_for(path).into_iter().map(Rule::name).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            names("crates/core/src/tgen.rs"),
            vec![
                "cache_key",
                "clock",
                "determinism",
                "lock_nesting",
                "unsafe_safety"
            ]
        );
        assert_eq!(
            names("crates/service/src/service.rs"),
            vec![
                "cache_key",
                "clock",
                "lock_nesting",
                "panic_free",
                "unsafe_safety"
            ]
        );
        // Audited clock file: no clock rule, still panic-free.
        assert_eq!(
            names("crates/service/src/scheduler.rs"),
            vec!["cache_key", "lock_nesting", "panic_free", "unsafe_safety"]
        );
        // Audited fingerprint module: no cache_key rule on the file that
        // defines the canonicalizers.
        assert_eq!(
            names("crates/core/src/cache.rs"),
            vec!["clock", "determinism", "lock_nesting", "unsafe_safety"]
        );
        assert_eq!(
            names("crates/core/src/kmst/garg.rs"),
            vec!["clock", "determinism", "lock_nesting", "unsafe_safety"]
        );
        assert_eq!(
            names("crates/bench/src/lib.rs"),
            vec!["lock_nesting", "unsafe_safety"]
        );
        assert_eq!(names("examples/quickstart.rs"), vec!["unsafe_safety"]);
        assert_eq!(names("tests/batch.rs"), vec!["unsafe_safety"]);
    }

    #[test]
    fn escape_parsing() {
        let src = b"// lcmsr-lint: allow(clock) \xe2\x80\x94 bench display only\n";
        let tokens = lex(src);
        let escape = parse_escape(&tokens[0], src).expect("parses");
        assert_eq!(escape.rules, vec![Rule::Clock]);
        assert!(escape.has_reason);
        assert!(escape.unknown.is_empty());

        let src = b"// lcmsr-lint: allow(clock, panic_free)\n";
        let tokens = lex(src);
        let escape = parse_escape(&tokens[0], src).expect("parses");
        assert_eq!(escape.rules, vec![Rule::Clock, Rule::PanicFree]);
        assert!(!escape.has_reason);

        let src = b"// lcmsr-lint: allow(clocks) - typo\n";
        let tokens = lex(src);
        let escape = parse_escape(&tokens[0], src).expect("parses");
        assert_eq!(escape.unknown, vec!["clocks".to_string()]);

        let src = b"// just a comment mentioning lcmsr-lint\n";
        let tokens = lex(src);
        assert!(parse_escape(&tokens[0], src).is_none());
    }

    #[test]
    fn cache_key_flags_raw_to_bits_outside_audited_modules() {
        let src = br#"
fn fingerprint(x: f64) -> u64 { x.to_bits() }
// lcmsr-lint: allow(cache_key) - sign already folded by the caller
fn audited(x: f64) -> u64 { x.to_bits() }
#[cfg(test)]
mod tests {
    fn t(x: f64) -> u64 { x.to_bits() }
}
"#;
        let findings = analyze_source("crates/core/src/engine.rs", src);
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == Rule::CacheKey)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].message.contains("canon_f64"));
        // The audited module itself is out of scope entirely.
        let audited = analyze_source("crates/core/src/cache.rs", src);
        assert!(audited.iter().all(|f| f.rule != Rule::CacheKey));
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = br#"
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); z.expect("fine"); }
}
"#;
        let findings = analyze_source("crates/service/src/x.rs", src);
        let panics: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == Rule::PanicFree)
            .collect();
        assert_eq!(panics.len(), 1, "{findings:?}");
        assert_eq!(panics[0].line, 2);
    }
}
