//! A from-scratch token-level Rust lexer.
//!
//! The lint rules only need to tell *code* apart from *comments and string
//! literals* — a finding inside a doc comment or a log message is not a
//! finding — plus identifier and punctuation tokens with line numbers for
//! diagnostics.  That is exactly what this lexer produces; it does not build
//! an AST and it tolerates arbitrary bytes (including invalid UTF-8 and
//! truncated literals) without ever panicking.
//!
//! Guarantees relied on by the rule engine and pinned by proptests:
//!
//! * **Totality** — `lex` terminates on every byte string.
//! * **Tiling** — token spans are in order, non-overlapping, and every input
//!   byte is covered by exactly one token (whitespace runs are tokens too).
//! * **Containment** — trigger words inside `//`/`/* */` comments, string or
//!   raw-string literals, and char literals come out as comment/literal
//!   tokens, never as identifiers.

/// What a token is.  Only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (also runs of non-ASCII bytes — close enough
    /// for linting, and total over arbitrary input).
    Ident,
    /// `'lifetime` (no closing quote).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nesting honoured; unterminated runs to end of input.
    BlockComment,
    /// A single punctuation byte.
    Punct(u8),
    /// A run of ASCII whitespace.
    Whitespace,
}

/// One lexed token: kind plus byte span and 1-based line number of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, keeping the line counter honest.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes until `stop` returns true or input ends.
    fn bump_while(&mut self, mut keep: impl FnMut(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if !keep(b) {
                break;
            }
            self.bump();
        }
    }

    fn whitespace(&mut self) {
        self.bump_while(|b| b.is_ascii_whitespace());
    }

    fn line_comment(&mut self) {
        self.bump_while(|b| b != b'\n');
    }

    fn block_comment(&mut self) {
        self.bump_n(2); // the opening `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => break, // unterminated: runs to EOF
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed), honouring
    /// backslash escapes; unterminated runs to EOF.
    fn string_body(&mut self) {
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(b'\\') if self.peek(1).is_some() => self.bump_n(2),
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw string `r##"…"##` starting at the first `#` or `"`
    /// (the `r`/`br`/`cr` prefix already consumed).
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; lex whatever follows normally
        }
        self.bump();
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    let mut closed = 0usize;
                    while closed < hashes && self.peek(0) == Some(b'#') {
                        closed += 1;
                        self.bump();
                    }
                    if closed == hashes {
                        break;
                    }
                }
                _ => self.bump(),
            }
        }
    }

    /// Is `r`/`b`/`br`/`rb`/`c`/`cr` at `pos` the prefix of a (raw) string or
    /// byte-char literal?  Returns the prefix length to skip, the raw flag,
    /// and whether it is a char-flavoured literal (`b'…'`).
    fn literal_prefix(&self) -> Option<(usize, bool, bool)> {
        let raw_at = |off: usize| {
            // `r` followed by zero or more `#` then `"`.
            let mut i = off + 1;
            while self.peek(i) == Some(b'#') {
                i += 1;
            }
            self.peek(i) == Some(b'"')
        };
        match self.peek(0) {
            Some(b'r') if raw_at(0) => Some((1, true, false)),
            Some(b'b' | b'c') => match self.peek(1) {
                Some(b'"') => Some((1, false, false)),
                Some(b'r') if self.peek(0) == Some(b'b') && raw_at(1) => Some((2, true, false)),
                Some(b'\'') if self.peek(0) == Some(b'b') => Some((1, false, true)),
                _ => None,
            },
            _ => None,
        }
    }

    /// A `'` token: char literal, lifetime, or a lone quote.
    fn quote(&mut self) -> TokenKind {
        self.bump(); // the `'`
        match self.peek(0) {
            // `'\n'`, `'\''`, `'\u{…}'` — escape means char literal.
            Some(b'\\') => {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                // Consume to the closing quote (covers `\u{1F600}`).
                self.bump_while(|b| b != b'\'' && b != b'\n');
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            // `'a'` is a char; `'a` (no closing quote) is a lifetime.
            Some(b) if is_ident_start(b) => {
                self.bump();
                let mut len = 1usize;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                    len += 1;
                }
                // One ident char then `'` → char literal (`'a'`); longer
                // names are lifetimes even if a stray quote follows.
                if self.peek(0) == Some(b'\'') && len == 1 {
                    self.bump();
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            }
            // `'+'`-style: non-ident char closed by a quote.
            Some(b) if b != b'\'' && b != b'\n' && self.peek(1) == Some(b'\'') => {
                self.bump_n(2);
                TokenKind::Char
            }
            _ => TokenKind::Punct(b'\''),
        }
    }

    fn number(&mut self) {
        // Good enough for linting: digits, `_`, type suffixes, hex/oct/bin
        // letters, `.` for floats, and a signed exponent.
        loop {
            match self.peek(0) {
                Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' => {
                    let exponent = (b == b'e' || b == b'E') && self.pos < self.src.len();
                    self.bump();
                    if exponent && matches!(self.peek(0), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        let start = self.pos;
        let line = self.line;
        let b = self.peek(0)?;
        let kind = if b.is_ascii_whitespace() {
            self.whitespace();
            TokenKind::Whitespace
        } else if b == b'/' && self.peek(1) == Some(b'/') {
            self.line_comment();
            TokenKind::LineComment
        } else if b == b'/' && self.peek(1) == Some(b'*') {
            self.block_comment();
            TokenKind::BlockComment
        } else if let Some((skip, raw, char_like)) = self.literal_prefix() {
            self.bump_n(skip);
            if char_like {
                self.quote()
            } else if raw {
                self.raw_string_body();
                TokenKind::Str
            } else {
                self.bump(); // opening `"`
                self.string_body();
                TokenKind::Str
            }
        } else if b == b'"' {
            self.bump();
            self.string_body();
            TokenKind::Str
        } else if b == b'\'' {
            self.quote()
        } else if b.is_ascii_digit() {
            self.number();
            TokenKind::Number
        } else if is_ident_start(b) {
            self.bump_while(is_ident_continue);
            TokenKind::Ident
        } else {
            self.bump();
            TokenKind::Punct(b)
        };
        debug_assert!(self.pos > start, "lexer must always make progress");
        Some(Token {
            kind,
            start,
            end: self.pos,
            line,
        })
    }
}

/// Lexes `src` into a complete, tiling token stream.
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut lexer = Lexer {
        src,
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(token) = lexer.next_token() {
        tokens.push(token);
    }
    tokens
}

/// The token's text (for `Ident`, comments, …).
pub fn text<'a>(src: &'a [u8], token: &Token) -> &'a [u8] {
    &src[token.start..token.end]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("let x = y.z();"),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct(b'='),
                TokenKind::Ident,
                TokenKind::Punct(b'.'),
                TokenKind::Ident,
                TokenKind::Punct(b'('),
                TokenKind::Punct(b')'),
                TokenKind::Punct(b';'),
            ]
        );
    }

    #[test]
    fn comments_absorb_trigger_words() {
        let src = "// HashMap here\n/* Instant::now() \n /* nested */ unwrap */ x";
        let tokens = lex(src.as_bytes());
        let code_idents: Vec<&[u8]> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| text(src.as_bytes(), t))
            .collect();
        assert_eq!(code_idents, vec![b"x".as_slice()]);
    }

    #[test]
    fn strings_absorb_trigger_words() {
        for src in [
            r#"let m = "HashMap::new()";"#,
            r##"let m = r#"Instant::now() "quoted" "#;"##,
            r#"let m = b"unwrap()";"#,
            r#"let m = c"panic!";"#,
            r##"let m = br#"expect("x")"#;"##,
        ] {
            let tokens = lex(src.as_bytes());
            assert!(
                tokens
                    .iter()
                    .any(|t| t.kind == TokenKind::Str && t.end - t.start > 2),
                "{src}: no string token found"
            );
            let idents: Vec<&[u8]> = tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| text(src.as_bytes(), t))
                .collect();
            assert_eq!(idents, vec![b"let".as_slice(), b"m".as_slice()], "{src}");
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let tokens = lex(src.as_bytes());
        let lifetimes = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
        // Escapes and unicode escapes are chars, not lifetimes.
        for src in ["'\\n'", "'\\''", "'\\u{1F600}'", "b'\\t'"] {
            let t = lex(src.as_bytes());
            assert_eq!(t.len(), 1, "{src}: {t:?}");
            assert_eq!(t[0].kind, TokenKind::Char, "{src}");
        }
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let src = "a\nb\n\ncd /* x\ny */ e";
        let lines: Vec<(Vec<u8>, u32)> = lex(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (text(src.as_bytes(), &t).to_vec(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![
                (b"a".to_vec(), 1),
                (b"b".to_vec(), 2),
                (b"cd".to_vec(), 4),
                (b"e".to_vec(), 5),
            ]
        );
    }

    #[test]
    fn unterminated_literals_do_not_hang_or_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "r#", "1e"] {
            let tokens = lex(src.as_bytes());
            assert_eq!(tokens.last().map(|t| t.end), Some(src.len()), "{src}");
        }
    }

    #[test]
    fn spans_tile_ascii_source() {
        let src = "fn main() { let s = \"x\"; // done\n}";
        let tokens = lex(src.as_bytes());
        let mut cursor = 0;
        for t in &tokens {
            assert_eq!(t.start, cursor);
            assert!(t.end > t.start);
            cursor = t.end;
        }
        assert_eq!(cursor, src.len());
    }
}
