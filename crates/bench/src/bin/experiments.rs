//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 7) on the synthetic NY-like / USANW-like data sets.
//!
//! Usage:
//!
//! ```text
//! cargo run -p lcmsr-bench --release --bin experiments -- all
//! cargo run -p lcmsr-bench --release --bin experiments -- fig7_8 fig15
//! LCMSR_SCALE=small LCMSR_QUERIES=20 cargo run -p lcmsr-bench --release --bin experiments -- all
//! cargo run -p lcmsr-bench --release --bin experiments -- serve --addr 127.0.0.1:7878
//! ```
//!
//! Available experiment ids: `table1`, `fig7_8`, `fig9_10`, `fig11_12`,
//! `fig13_14`, `fig15`, `fig16`, `fig17_19`, `sec7_5`, `fig21_22`, `all` —
//! plus `serve`, which starts the `lcmsr_service` HTTP front-end over the
//! synthetic NY dataset (flags: `--addr`, `--max-batch`, `--max-delay-ms`,
//! `--queue-capacity`, `--http-workers`, `--slow-ms` for the slow-query
//! threshold and `--trace-sample` for 1-in-N span tracing), and `dump`,
//! which renders the
//! bit-exact golden-region snapshot (`--out FILE`, default stdout) that
//! `tests/golden/` pins.  Engine worker counts honour
//! `--workers N` / `LCMSR_WORKERS` everywhere they apply (the `table1`
//! batched-workload line and the serve scheduler alike), and the dataset
//! scale honours `--scale NAME` / `LCMSR_SCALE`
//! (`tiny` | `small` | `medium` | `large` | `huge`); malformed values for
//! either are reported on stderr instead of silently defaulting.
//! Absolute numbers differ from the paper (synthetic data, reduced scale);
//! the reported *shapes* are what EXPERIMENTS.md records and compares.

use lcmsr_bench::*;
use lcmsr_core::app::run_app;
use lcmsr_core::prelude::*;
use lcmsr_datagen::prelude::*;
use lcmsr_roadnet::geo::Rect;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let workers = take_workers_flag(&mut args).unwrap_or_else(workers_from_env);
    let scale = take_scale_flag(&mut args).unwrap_or_else(scale_from_env);
    if args.first().map(String::as_str) == Some("serve") {
        serve_command(&args[1..], workers, scale);
        return;
    }
    if args.first().map(String::as_str) == Some("dump") {
        dump_command(&args[1..], scale);
        return;
    }
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1", "fig7_8", "fig9_10", "fig11_12", "fig13_14", "fig15", "fig16", "fig17_19",
            "sec7_5", "fig21_22",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    } else {
        args
    };
    println!("# LCMSR experiment harness");
    println!(
        "# scale = {scale:?}, queries/setting = {}",
        queries_per_setting()
    );

    println!("\n## Building datasets");
    let ny = ny_dataset(scale);
    println!("NY-like    : {}", ny.network.stats());
    println!(
        "             {} objects, {} keywords",
        ny.collection.len(),
        ny.collection.keyword_count()
    );
    let usanw = usanw_dataset(scale);
    println!("USANW-like : {}", usanw.network.stats());
    println!(
        "             {} objects, {} keywords",
        usanw.collection.len(),
        usanw.collection.keyword_count()
    );

    for id in &wanted {
        match id.as_str() {
            "table1" => table1(&ny, workers),
            "fig7_8" => fig7_8(&ny),
            "fig9_10" => fig9_10(&ny),
            "fig11_12" => fig11_12(&ny),
            "fig13_14" => fig13_14(&ny),
            "fig15" => vary_query_args(&ny, "fig15 (NY)"),
            "fig16" => vary_query_args(&usanw, "fig16 (USANW)"),
            "fig17_19" => fig17_19(&ny),
            "sec7_5" => sec7_5(&ny),
            "fig21_22" => fig21_22(&ny, &usanw),
            other => eprintln!("unknown experiment id '{other}' — skipped"),
        }
    }
}

/// Parses `--flag value` / `--flag=value` from a serve-style argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            let value = iter.next().map(String::as_str);
            if value.is_none() {
                eprintln!("{flag} requires a value; ignoring");
            }
            return value;
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|v| v.strip_prefix('=')) {
            return Some(value);
        }
    }
    None
}

/// `dump`: render the bit-exact golden-region dump (TGEN/APP/Greedy, single +
/// top-3, deterministic NY workload) to stdout or `--out FILE`.  The committed
/// snapshot under `tests/golden/` is regenerated with exactly this command;
/// `tests/golden_regions.rs` and the CI `golden-regions` job compare against
/// it byte for byte.
fn dump_command(args: &[String], scale: NetworkScale) {
    let dataset = ny_dataset(scale);
    let dump = render_golden_dump(&dataset);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &dump).expect("write golden dump");
            eprintln!(
                "# wrote {} lines ({} bytes) to {path}",
                dump.lines().count(),
                dump.len()
            );
        }
        None => print!("{dump}"),
    }
}

/// `serve`: load/generate a dataset and serve it over HTTP until killed.
fn serve_command(args: &[String], workers: usize, scale: NetworkScale) {
    use lcmsr_service::http::ServerConfig;
    use lcmsr_service::{leak_engine, serve, BatchConfig, DiagnosticsConfig, ServiceConfig};

    let addr = flag_value(args, "--addr")
        .unwrap_or("127.0.0.1:7878")
        .to_string();
    // Malformed numeric flags are reported, not silently defaulted — an
    // operator tuning the scheduler must know when a knob did not take.
    let parse_or = |flag: &str, default: usize| match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("ignoring invalid {flag} value '{v}' (expected a number); using {default}");
            default
        }),
    };
    let max_batch = parse_or("--max-batch", 32);
    let max_delay_ms = parse_or("--max-delay-ms", 2);
    let queue_capacity = parse_or("--queue-capacity", 1024);
    let http_workers = parse_or("--http-workers", (workers * 4).max(8));
    let diag_defaults = DiagnosticsConfig::default();
    let slow_ms = parse_or("--slow-ms", diag_defaults.slow_ms as usize) as u64;
    let trace_sample = parse_or("--trace-sample", diag_defaults.trace_sample as usize) as u64;

    println!("# lcmsr serve");
    println!("# building NY-like dataset at scale {scale:?}…");
    let dataset = ny_dataset(scale);
    println!("# network    : {}", dataset.network.stats());
    println!(
        "# objects    : {} ({} keywords)",
        dataset.collection.len(),
        dataset.collection.keyword_count()
    );
    let engine = leak_engine(dataset.network, dataset.collection);
    let config = ServiceConfig {
        server: ServerConfig {
            addr,
            http_workers,
            max_body_bytes: 1024 * 1024,
            ..ServerConfig::default()
        },
        batch: BatchConfig {
            max_batch,
            max_delay: std::time::Duration::from_millis(max_delay_ms as u64),
            queue_capacity,
            batch_workers: workers,
        },
        diagnostics: DiagnosticsConfig {
            slow_ms,
            trace_sample,
            ..diag_defaults
        },
    };
    println!(
        "# scheduler  : max_batch {max_batch}, max_delay {max_delay_ms} ms, queue {queue_capacity}, {workers} engine workers, {http_workers} http workers"
    );
    println!(
        "# diagnostics: slow-query threshold {slow_ms} ms (0 = off), span tracing 1-in-{trace_sample} (0 = off)"
    );
    let handle = serve(engine, config).expect("service must start");
    println!("# listening on http://{}", handle.addr());
    println!(
        "# routes: POST /query, GET /healthz, GET /metrics, GET /debug/trace/recent, GET /debug/slow   (Ctrl-C to stop)"
    );
    handle.wait();
}

/// Table 1: an example trace of APP's quota binary search, plus a batched
/// workload-throughput line honouring the shared worker count.
fn table1(ny: &Dataset, workers: usize) {
    println!("\n## table1 — binary-search trace (Table 1 analogue)");
    let queries = default_workload(ny, 101);
    let Some(query) = queries.first() else {
        println!("(no query available)");
        return;
    };
    let engine = LcmsrEngine::new(&ny.network, &ny.collection);
    let params = AppParams::default();
    let graph = engine.prepare(query, params.alpha).expect("prepare");
    let mut arena = TupleArena::new();
    let outcome = run_app(
        &graph,
        &mut arena,
        &params,
        &CancelToken::none(),
        &mut TraceCollector::disabled(),
    )
    .expect("APP run");
    println!(
        "query keywords: {:?}, ∆ = {:.0} m, 3∆ = {:.0} m",
        query.keywords,
        query.delta,
        3.0 * query.delta
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "step", "L", "U", "X", "TC.l", "(1+β)X", "T'C.l"
    );
    for s in &outcome.trace {
        println!(
            "{:>4} {:>12} {:>12} {:>12} {:>10} {:>12} {:>10}",
            s.step,
            s.lower,
            s.upper,
            s.x,
            s.tc_length
                .map_or_else(|| "-".into(), |l| format!("{l:.0}")),
            if s.x_beta > 0 {
                s.x_beta.to_string()
            } else {
                "-".into()
            },
            s.tprime_length
                .map_or_else(|| "-".into(), |l| format!("{l:.0}")),
        );
    }
    if let Some(best) = outcome.best {
        println!(
            "result: weight {:.4}, length {:.0} m, {} nodes",
            best.weight,
            best.length,
            best.node_count()
        );
    }
    // The same workload through the batched engine path, honouring the
    // --workers / LCMSR_WORKERS knob the serve path uses.
    let start = std::time::Instant::now();
    let results = run_query_batch(&engine, &queries, &Algorithm::App(params), workers)
        .expect("batched workload");
    let secs = start.elapsed().as_secs_f64();
    println!(
        "workload: {} queries batched over {} workers in {:.1} ms ({:.1} q/s)",
        results.len(),
        workers,
        secs * 1e3,
        results.len() as f64 / secs.max(1e-12)
    );
}

/// Figures 7 and 8: APP runtime and region weight vs the scaling parameter α.
fn fig7_8(ny: &Dataset) {
    println!("\n## fig7_8 — APP vs α (NY): runtime should fall, weight stay nearly flat");
    let queries = default_workload(ny, 78);
    let engine = LcmsrEngine::new(&ny.network, &ny.collection);
    println!(
        "{:>8} {:>14} {:>14}",
        "alpha", "runtime (ms)", "region weight"
    );
    for alpha in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let params = AppParams {
            alpha,
            ..AppParams::default()
        };
        let agg = aggregate(&engine, &queries, &Algorithm::App(params));
        println!(
            "{:>8} {:>14.2} {:>14.4}",
            alpha, agg.avg_millis, agg.avg_weight
        );
    }
}

/// Figures 9 and 10: TGEN runtime and weight vs its (much coarser) α.
fn fig9_10(ny: &Dataset) {
    println!("\n## fig9_10 — TGEN vs α (NY): both runtime and weight should fall as α grows");
    let queries = default_workload(ny, 910);
    let engine = LcmsrEngine::new(&ny.network, &ny.collection);
    let base = default_tgen_alpha(ny, &queries);
    println!("(paper sweeps α ∈ {{50..1600}} at |V_Q| ≈ 26k; here α is scaled to the synthetic |V_Q|: base = {base:.1})");
    println!(
        "{:>18} {:>14} {:>14}",
        "alpha (x base)", "runtime (ms)", "region weight"
    );
    for factor in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let alpha = (base * factor).max(0.05);
        let agg = aggregate(&engine, &queries, &Algorithm::Tgen(TgenParams { alpha }));
        println!(
            "{:>10.2} ({:>4.2}x) {:>13.2} {:>14.4}",
            alpha, factor, agg.avg_millis, agg.avg_weight
        );
    }
}

/// Figures 11 and 12: APP runtime and weight vs the binary-search parameter β.
fn fig11_12(ny: &Dataset) {
    println!("\n## fig11_12 — APP vs β (NY): runtime and weight should both drop as β grows");
    let queries = default_workload(ny, 1112);
    let engine = LcmsrEngine::new(&ny.network, &ny.collection);
    println!(
        "{:>8} {:>14} {:>14}",
        "beta", "runtime (ms)", "region weight"
    );
    for beta in [0.001, 0.01, 0.1, 0.3, 0.9] {
        let params = AppParams {
            beta,
            ..AppParams::default()
        };
        let agg = aggregate(&engine, &queries, &Algorithm::App(params));
        println!(
            "{:>8} {:>14.2} {:>14.4}",
            beta, agg.avg_millis, agg.avg_weight
        );
    }
}

/// Figures 13 and 14: Greedy runtime and weight vs µ.
fn fig13_14(ny: &Dataset) {
    println!("\n## fig13_14 — Greedy vs µ (NY): mid-range µ should beat the extremes on weight");
    let queries = default_workload(ny, 1314);
    let engine = LcmsrEngine::new(&ny.network, &ny.collection);
    println!("{:>6} {:>14} {:>14}", "mu", "runtime (ms)", "region weight");
    for mu in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let agg = aggregate(&engine, &queries, &Algorithm::Greedy(GreedyParams { mu }));
        println!(
            "{:>6} {:>14.2} {:>14.4}",
            mu, agg.avg_millis, agg.avg_weight
        );
    }
}

/// Figures 15 (NY) and 16 (USANW): runtime and relative ratio while varying the
/// number of keywords, the length constraint ∆, and the size of Q.Λ.
fn vary_query_args(dataset: &Dataset, label: &str) {
    println!("\n## {label} — vary query arguments: runtime (ms) and relative ratio vs TGEN (%)");
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let defaults = dataset.default_query_params(1500);
    let n = queries_per_setting();

    let run_setting = |queries: &[LcmsrQuery], setting: &str| {
        if queries.is_empty() {
            println!("{setting:>18}  (no queries generated)");
            return;
        }
        let tgen_alpha = default_tgen_alpha(dataset, queries);
        let algorithms = [
            ("APP", Algorithm::App(AppParams::default())),
            ("TGEN", Algorithm::Tgen(TgenParams { alpha: tgen_alpha })),
            ("Greedy", Algorithm::Greedy(GreedyParams::default())),
        ];
        let mut weights: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut millis = [0.0f64; 3];
        for q in queries {
            for (i, (_, alg)) in algorithms.iter().enumerate() {
                let m = measure(&engine, q, alg);
                weights[i].push(m.weight);
                millis[i] += m.millis;
            }
        }
        let reference = weights[1].clone();
        print!("{setting:>18}");
        for (i, (name, _)) in algorithms.iter().enumerate() {
            let ratio = relative_ratio(&reference, &weights[i]);
            print!(
                "  {name}: {:>8.2} ms {:>6.1}%",
                millis[i] / queries.len() as f64,
                ratio
            );
        }
        println!();
    };

    println!("--- varying the number of query keywords (∆, Λ at defaults) ---");
    for keywords in 1..=5 {
        let queries = make_workload(
            dataset,
            n,
            keywords,
            defaults.area_km2,
            defaults.delta_km,
            150 + keywords as u64,
        );
        run_setting(&queries, &format!("|Q.psi| = {keywords}"));
    }
    println!("--- varying the length constraint Q.delta ---");
    for step in -2i32..=2 {
        let delta = (defaults.delta_km * (1.0 + 0.2 * step as f64)).max(0.1);
        let queries = make_workload(
            dataset,
            n,
            defaults.num_keywords,
            defaults.area_km2,
            delta,
            160 + (step + 2) as u64,
        );
        run_setting(&queries, &format!("delta = {delta:.1} km"));
    }
    println!("--- varying the query region size Q.Lambda ---");
    for step in -2i32..=2 {
        let area = (defaults.area_km2 * (1.0 + 0.25 * step as f64)).max(0.1);
        let queries = make_workload(
            dataset,
            n,
            defaults.num_keywords,
            area,
            defaults.delta_km,
            170 + (step + 2) as u64,
        );
        run_setting(&queries, &format!("area = {area:.1} km2"));
    }
}

/// Figures 17–19: the qualitative "cafe + restaurant" exploration example.
fn fig17_19(ny: &Dataset) {
    println!(
        "\n## fig17_19 — qualitative example (cafe + restaurant): TGEN >= APP >= Greedy in content"
    );
    let engine = LcmsrEngine::new(&ny.network, &ny.collection);
    // Pick a cafe/restaurant cluster as the downtown window, like the Bronx example.
    let center = ny
        .clusters
        .iter()
        .find(|c| matches!(CATEGORIES[c.category], "restaurant" | "cafe" | "coffee"))
        .map_or_else(|| ny.network.bounding_rect().unwrap().center(), |c| c.point);
    let extent = ny.network.bounding_rect().unwrap();
    let side = (extent.width().min(extent.height()) * 0.6).min(8_000.0);
    let roi = Rect::centered_square(center, side);
    let delta = (side * 0.5).min(8_000.0);
    let query = LcmsrQuery::new(["cafe", "restaurant"], delta, roi).unwrap();
    println!(
        "query: {:?}, ∆ = {:.0} m, Λ = {:.1} km²",
        query.keywords,
        query.delta,
        roi.area_km2()
    );
    let tgen_alpha = default_tgen_alpha(ny, std::slice::from_ref(&query));
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>12}",
        "algo", "objects", "weight", "nodes", "length (m)"
    );
    for algorithm in [
        Algorithm::Tgen(TgenParams { alpha: tgen_alpha }),
        Algorithm::App(AppParams::default()),
        Algorithm::Greedy(GreedyParams::default()),
    ] {
        let result = run_query(&engine, &query, &algorithm).expect("run");
        match result.region {
            Some(region) => {
                let objects: usize = region
                    .nodes
                    .iter()
                    .map(|&node| {
                        ny.collection
                            .objects_at(node)
                            .iter()
                            .filter(|&&o| {
                                let obj = ny.collection.object(o).unwrap();
                                query.keywords.iter().any(|k| obj.contains_term(k))
                            })
                            .count()
                    })
                    .sum();
                println!(
                    "{:>8} {:>10} {:>12.4} {:>10} {:>12.0}",
                    algorithm.name(),
                    objects,
                    region.weight,
                    region.node_count(),
                    region.length
                );
            }
            None => println!("{:>8} (no region)", algorithm.name()),
        }
    }
}

/// Section 7.5 / Figure 20: LCMSR vs the MaxRS fixed-rectangle baseline.
fn sec7_5(ny: &Dataset) {
    println!("\n## sec7_5 — LCMSR vs MaxRS (500 m × 500 m): LCMSR should win most comparisons");
    let engine = LcmsrEngine::new(&ny.network, &ny.collection);
    let queries = default_workload(ny, 75);
    let mut lcmsr_wins = 0usize;
    let mut maxrs_wins = 0usize;
    let mut ties = 0usize;
    let mut compared = 0usize;
    println!(
        "{:>4} {:>12} {:>12} {:>16} {:>10}",
        "q#", "MaxRS w", "LCMSR w", "MaxRS connected", "winner"
    );
    for (i, query) in queries.iter().enumerate() {
        let Ok(Some(maxrs)) = engine.run_maxrs(query, 500.0, 500.0) else {
            continue;
        };
        // The paper derives the LCMSR ∆ from the MaxRS region's connecting length.
        let delta = maxrs.connecting_length.unwrap_or(query.delta).max(250.0);
        let lcmsr_query =
            LcmsrQuery::new(query.keywords.clone(), delta, query.region_of_interest).unwrap();
        let tgen_alpha = default_tgen_alpha(ny, std::slice::from_ref(&lcmsr_query));
        let lcmsr = run_query(
            &engine,
            &lcmsr_query,
            &Algorithm::Tgen(TgenParams { alpha: tgen_alpha }),
        )
        .expect("run")
        .region;
        let lcmsr_weight = lcmsr.map_or(0.0, |r| r.weight);
        // Automatic quality proxy (replaces the paper's human annotators, see
        // DESIGN.md §4): a result is better when it is connected on the network
        // and gathers more relevant weight under the same connectivity budget.
        let winner = if (!maxrs.connected_in_network && lcmsr_weight > 0.0)
            || lcmsr_weight > maxrs.weight * 1.02
        {
            lcmsr_wins += 1;
            "LCMSR"
        } else if maxrs.weight > lcmsr_weight * 1.02 {
            maxrs_wins += 1;
            "MaxRS"
        } else {
            ties += 1;
            "tie"
        };
        compared += 1;
        println!(
            "{:>4} {:>12.4} {:>12.4} {:>16} {:>10}",
            i + 1,
            maxrs.weight,
            lcmsr_weight,
            maxrs.connected_in_network,
            winner
        );
    }
    if compared > 0 {
        println!(
            "summary: LCMSR better or tied on {:.0}% of {} comparable queries ({} LCMSR / {} MaxRS / {} ties)",
            100.0 * (lcmsr_wins + ties) as f64 / compared as f64,
            compared,
            lcmsr_wins,
            maxrs_wins,
            ties
        );
    } else {
        println!("(no comparable queries)");
    }
}

/// Figures 21 and 22: top-k runtime on NY and USANW for k = 1..5.
fn fig21_22(ny: &Dataset, usanw: &Dataset) {
    println!("\n## fig21_22 — top-k runtime (ms): mild growth with k, Greedy fastest, TGEN < APP");
    for (name, dataset) in [("NY", ny), ("USANW", usanw)] {
        let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
        let queries = default_workload(dataset, 2122);
        if queries.is_empty() {
            println!("{name}: no queries generated");
            continue;
        }
        let tgen_alpha = default_tgen_alpha(dataset, &queries);
        println!("--- {name} ---");
        println!("{:>4} {:>12} {:>12} {:>12}", "k", "APP", "TGEN", "Greedy");
        for k in 1..=5usize {
            let mut totals = [0.0f64; 3];
            for q in &queries {
                totals[0] += measure_topk(&engine, q, &Algorithm::App(AppParams::default()), k);
                totals[1] += measure_topk(
                    &engine,
                    q,
                    &Algorithm::Tgen(TgenParams { alpha: tgen_alpha }),
                    k,
                );
                totals[2] +=
                    measure_topk(&engine, q, &Algorithm::Greedy(GreedyParams::default()), k);
            }
            let n = queries.len() as f64;
            println!(
                "{:>4} {:>12.2} {:>12.2} {:>12.2}",
                k,
                totals[0] / n,
                totals[1] / n,
                totals[2] / n
            );
        }
    }
}
