//! Shared fixtures and helpers for the LCMSR benchmark harness.
//!
//! The harness regenerates every table and figure of the paper's evaluation
//! (Section 7) on the synthetic NY-like and USANW-like data sets.  Absolute
//! numbers differ from the paper (different hardware, language, and — most of
//! all — synthetic data at reduced scale); what the harness checks and reports
//! is the *shape* of each result: orderings, trends, and crossovers.
//!
//! Scale is controlled by the `--scale` CLI flag or the `LCMSR_SCALE`
//! environment variable (`tiny` | `small` | `medium` | `large` | `huge`);
//! the default is `tiny` so that `cargo bench`/`cargo run -p lcmsr-bench`
//! finish quickly on a laptop.

use lcmsr_core::prelude::*;
use lcmsr_datagen::prelude::*;
use std::time::Instant;

/// Runs one query through the unified [`QueryRequest`] API and returns the
/// single-result view — the bench-side replacement for the deprecated
/// `LcmsrEngine::run`.
pub fn run_query(
    engine: &LcmsrEngine<'_>,
    query: &LcmsrQuery,
    algorithm: &Algorithm,
) -> LcmsrResult<QueryResult> {
    engine
        .execute(&QueryRequest::new(query, algorithm.clone()))
        .map(QueryOutcome::into_single)
}

/// Top-k counterpart of [`run_query`], replacing `LcmsrEngine::run_topk`.
pub fn run_query_topk(
    engine: &LcmsrEngine<'_>,
    query: &LcmsrQuery,
    algorithm: &Algorithm,
    k: usize,
) -> LcmsrResult<TopKResult> {
    engine
        .execute(&QueryRequest::new(query, algorithm.clone()).top_k(k))
        .map(QueryOutcome::into_topk)
}

/// Batched counterpart over the unified API, replacing
/// `LcmsrEngine::run_batch_with`: one request per query, all sharing the
/// given algorithm, solved on `workers` threads.
pub fn run_query_batch(
    engine: &LcmsrEngine<'_>,
    queries: &[LcmsrQuery],
    algorithm: &Algorithm,
    workers: usize,
) -> LcmsrResult<Vec<QueryResult>> {
    let requests: Vec<QueryRequest<'_>> = queries
        .iter()
        .map(|q| QueryRequest::new(q, algorithm.clone()))
        .collect();
    Ok(engine
        .execute_batch_with(&requests, workers)?
        .into_iter()
        .map(QueryOutcome::into_single)
        .collect())
}

/// Reads a `usize` knob from the environment, falling back to `default`.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an `f64` knob from the environment (bench gate thresholds),
/// falling back to `default`.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of-`rounds` wall-clock seconds for `f` (the plain-harness benches
/// gate on this; best-of smooths scheduler noise better than a mean).
pub fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Resolves the engine worker count shared by the experiments CLI and the
/// serving path: an explicit `--workers N` flag wins, then the
/// `LCMSR_WORKERS` environment variable, then the available hardware
/// parallelism.  `take_workers_flag` removes the flag (and its value) from an
/// argument list so subcommand parsing never sees it.
pub fn workers_from_env() -> usize {
    parse_workers_value(std::env::var("LCMSR_WORKERS").ok().as_deref())
}

/// The pure half of [`workers_from_env`], separated so tests need not mutate
/// process-global environment (a data race under the parallel test harness).
fn parse_workers_value(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Extracts `--workers N` (or `--workers=N`) from `args`, returning the
/// parsed count and leaving the remaining arguments in place.  A malformed or
/// missing value is reported on stderr and ignored (the caller falls back to
/// `LCMSR_WORKERS` / auto-detection) rather than silently dropped.
pub fn take_workers_flag(args: &mut Vec<String>) -> Option<usize> {
    let mut found = None;
    let mut report = |value: &str| match value.parse::<usize>() {
        Ok(w) => found = Some(w.max(1)),
        Err(_) => eprintln!("ignoring invalid --workers value '{value}' (expected a number)"),
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--workers" {
            if i + 1 < args.len() {
                let value = args[i + 1].clone();
                report(&value);
                args.drain(i..i + 2);
            } else {
                eprintln!("--workers requires a value; ignoring");
                args.remove(i);
            }
        } else if let Some(value) = args[i].strip_prefix("--workers=") {
            let value = value.to_string();
            report(&value);
            args.remove(i);
        } else {
            i += 1;
        }
    }
    found
}

/// Maps a preset name to its scale; `None` for unknown names.
fn scale_by_name(name: &str) -> Option<NetworkScale> {
    match name {
        "tiny" => Some(NetworkScale::Tiny),
        "small" => Some(NetworkScale::Small),
        "medium" => Some(NetworkScale::Medium),
        "large" => Some(NetworkScale::Large),
        "huge" => Some(NetworkScale::Huge),
        _ => None,
    }
}

/// Resolves the dataset scale from `LCMSR_SCALE` (default: tiny).  A
/// malformed value is reported on stderr and falls back to tiny rather than
/// being silently swallowed.
pub fn scale_from_env() -> NetworkScale {
    parse_scale_value(std::env::var("LCMSR_SCALE").ok().as_deref())
}

/// The pure half of [`scale_from_env`], separated so tests need not mutate
/// process-global environment (a data race under the parallel test harness).
fn parse_scale_value(value: Option<&str>) -> NetworkScale {
    match value {
        None | Some("") => NetworkScale::Tiny,
        Some(name) => scale_by_name(name).unwrap_or_else(|| {
            eprintln!(
                "ignoring invalid scale '{name}' \
                 (expected tiny|small|medium|large|huge); using tiny"
            );
            NetworkScale::Tiny
        }),
    }
}

/// Extracts `--scale NAME` (or `--scale=NAME`) from `args`, returning the
/// parsed preset and leaving the remaining arguments in place.  A malformed
/// or missing value is reported on stderr and ignored (the caller falls back
/// to `LCMSR_SCALE` / the tiny default) rather than silently dropped.
pub fn take_scale_flag(args: &mut Vec<String>) -> Option<NetworkScale> {
    let mut found = None;
    let mut report = |value: &str| match scale_by_name(value) {
        Some(scale) => found = Some(scale),
        None => eprintln!(
            "ignoring invalid --scale value '{value}' \
             (expected tiny|small|medium|large|huge)"
        ),
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scale" {
            if i + 1 < args.len() {
                let value = args[i + 1].clone();
                report(&value);
                args.drain(i..i + 2);
            } else {
                eprintln!("--scale requires a value; ignoring");
                args.remove(i);
            }
        } else if let Some(value) = args[i].strip_prefix("--scale=") {
            let value = value.to_string();
            report(&value);
            args.remove(i);
        } else {
            i += 1;
        }
    }
    found
}

/// Builds the NY-like dataset at the given scale.
pub fn ny_dataset(scale: NetworkScale) -> Dataset {
    Dataset::build(DatasetConfig::ny(scale, 2014))
}

/// Builds the USANW-like dataset at the given scale.
pub fn usanw_dataset(scale: NetworkScale) -> Dataset {
    Dataset::build(DatasetConfig::usanw(scale, 733))
}

/// Experiment-wide default number of queries per setting.  The paper uses 50;
/// the harness default keeps full sweeps fast and can be raised via
/// `LCMSR_QUERIES`.
pub fn queries_per_setting() -> usize {
    std::env::var("LCMSR_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// A concrete workload: LCMSR queries derived from the generator's output.
pub fn make_workload(
    dataset: &Dataset,
    num_queries: usize,
    num_keywords: usize,
    area_km2: f64,
    delta_km: f64,
    seed: u64,
) -> Vec<LcmsrQuery> {
    let params = QueryGenParams {
        num_queries,
        num_keywords,
        area_km2,
        delta_km,
        seed,
    };
    dataset
        .queries(&params)
        .into_iter()
        .map(|q| LcmsrQuery::new(q.keywords, q.delta, q.rect).expect("generated query is valid"))
        .collect()
}

/// Default workload parameters for a dataset, mirroring the paper's defaults
/// (3 keywords; NY: ∆ = 10 km, Λ = 100 km²; USANW: ∆ = 15 km, Λ = 150 km²),
/// clamped to the synthetic network's extent.
pub fn default_workload(dataset: &Dataset, seed: u64) -> Vec<LcmsrQuery> {
    let params = dataset.default_query_params(seed);
    make_workload(
        dataset,
        queries_per_setting(),
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        seed,
    )
}

/// The paper's TGEN α (400 for NY, 300 for USANW) presumes query regions of
/// tens of thousands of nodes (|V_Q|/α ≈ 65); at reduced synthetic scale this
/// helper picks the α giving the same granularity for a workload.
pub fn default_tgen_alpha(dataset: &Dataset, queries: &[LcmsrQuery]) -> f64 {
    let Some(query) = queries.first() else {
        return 50.0;
    };
    let nodes_in_area = dataset
        .network
        .nodes_in_rect(&query.region_of_interest)
        .len()
        .max(1);
    (nodes_in_area as f64 / 65.0).max(1.0)
}

/// A similar helper for APP's α: the paper's default 0.5 works at any scale.
pub fn default_app_params() -> AppParams {
    AppParams::default()
}

/// The deterministic golden workload: the exact query set the committed
/// golden-region snapshot under `tests/golden/` was rendered from (the same
/// 32-query tiny-NY workload the `solve_phase` bench tracks).  Any change to
/// this function invalidates the snapshot — regenerate it with
/// `experiments dump` and explain the regeneration in the commit.
pub fn golden_workload(dataset: &Dataset) -> Vec<LcmsrQuery> {
    let params = dataset.default_query_params(2024);
    make_workload(
        dataset,
        32,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        2024,
    )
}

/// Renders one region as a fully bit-exact golden line: measures as raw IEEE
/// bit patterns (hex) plus the sorted global node and edge ids.  Any change
/// anywhere in the pipeline — scoring, scaling, solver tie-breaks — shows up
/// as a byte diff.
fn golden_region_line(out: &mut String, region: &Region) {
    use std::fmt::Write;
    write!(
        out,
        "scaled={} weight={:016x} length={:016x} nodes=",
        region.scaled_weight,
        region.weight.to_bits(),
        region.length.to_bits()
    )
    .unwrap();
    for (i, n) in region.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}", n.0).unwrap();
    }
    out.push_str(" edges=");
    for (i, e) in region.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}", e.0).unwrap();
    }
    out.push('\n');
}

/// Renders the full golden-region dump for a dataset: for every query of
/// [`golden_workload`] and each of TGEN, APP and Greedy, the single best
/// region (`run`) and the top-3 regions (`run_topk`), one line per region,
/// bit-exact.  Committed under `tests/golden/` and compared byte-for-byte by
/// `tests/golden_regions.rs` and the CI `golden-regions` job — this replaces
/// the ad-hoc cross-worktree diffs earlier PRs did by hand.
pub fn render_golden_dump(dataset: &Dataset) -> String {
    render_golden_dump_traced(dataset, false)
}

/// [`render_golden_dump`] with per-query span tracing switched on or off.
///
/// The dump renders regions only, so the two modes must produce *byte
/// identical* text: tracing is specified to never perturb solver results
/// (the collector only observes), and `tests/golden_regions.rs` pins that by
/// comparing the traced render against the committed snapshot too.
pub fn render_golden_dump_traced(dataset: &Dataset, trace: bool) -> String {
    use std::fmt::Write;
    let queries = golden_workload(dataset);
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let tgen_alpha = default_tgen_alpha(dataset, &queries);
    let algorithms = [
        ("TGEN", Algorithm::Tgen(TgenParams { alpha: tgen_alpha })),
        ("APP", Algorithm::App(AppParams::default())),
        ("Greedy", Algorithm::Greedy(GreedyParams::default())),
    ];
    let mut out = String::new();
    // The header records the dataset scale so a snapshot regenerated under a
    // stray `LCMSR_SCALE` fails the diff on its *first* line with the cause
    // spelled out, instead of producing an inscrutable whole-file divergence.
    writeln!(
        out,
        "# golden regions: NY-like synthetic dataset, scale={:?}, {} queries, tgen_alpha={:016x}",
        dataset.config.scale,
        queries.len(),
        tgen_alpha.to_bits()
    )
    .unwrap();
    for (name, algorithm) in &algorithms {
        for (qi, query) in queries.iter().enumerate() {
            let single = engine
                .execute(&QueryRequest::new(query, algorithm.clone()).trace(trace))
                .map(QueryOutcome::into_single)
                .expect("golden run");
            write!(out, "{name} q{qi:02} single ").unwrap();
            match &single.region {
                Some(region) => golden_region_line(&mut out, region),
                None => out.push_str("(none)\n"),
            }
            let topk = engine
                .execute(
                    &QueryRequest::new(query, algorithm.clone())
                        .top_k(3)
                        .trace(trace),
                )
                .map(QueryOutcome::into_topk)
                .expect("golden topk");
            if topk.regions.is_empty() {
                writeln!(out, "{name} q{qi:02} top3 (none)").unwrap();
            }
            for (r, region) in topk.regions.iter().enumerate() {
                write!(out, "{name} q{qi:02} top3 r{r} ").unwrap();
                golden_region_line(&mut out, region);
            }
        }
    }
    out
}

/// Measured outcome of one algorithm on one query.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Result weight (0 when no region was found).
    pub weight: f64,
    /// Result length in metres (0 when no region was found).
    pub length: f64,
    /// Number of nodes in the result region.
    pub nodes: usize,
    /// Wall-clock milliseconds.
    pub millis: f64,
}

/// Runs one algorithm on one query and measures it.
pub fn measure(engine: &LcmsrEngine<'_>, query: &LcmsrQuery, algorithm: &Algorithm) -> Measurement {
    let start = Instant::now();
    let result = run_query(engine, query, algorithm).expect("query execution failed");
    let millis = start.elapsed().as_secs_f64() * 1e3;
    match result.region {
        Some(region) => Measurement {
            weight: region.weight,
            length: region.length,
            nodes: region.node_count(),
            millis,
        },
        None => Measurement {
            weight: 0.0,
            length: 0.0,
            nodes: 0,
            millis,
        },
    }
}

/// Runs a top-k query and measures the wall-clock time.
pub fn measure_topk(
    engine: &LcmsrEngine<'_>,
    query: &LcmsrQuery,
    algorithm: &Algorithm,
    k: usize,
) -> f64 {
    let start = Instant::now();
    let _ = run_query_topk(engine, query, algorithm, k).expect("top-k execution failed");
    start.elapsed().as_secs_f64() * 1e3
}

/// Aggregates a workload: average runtime (ms) and average weight per algorithm.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Average wall-clock time per query, milliseconds.
    pub avg_millis: f64,
    /// Average result weight per query.
    pub avg_weight: f64,
}

/// Measures an algorithm over a whole workload.
pub fn aggregate(
    engine: &LcmsrEngine<'_>,
    queries: &[LcmsrQuery],
    algorithm: &Algorithm,
) -> Aggregate {
    if queries.is_empty() {
        return Aggregate::default();
    }
    let mut total_ms = 0.0;
    let mut total_weight = 0.0;
    for q in queries {
        let m = measure(engine, q, algorithm);
        total_ms += m.millis;
        total_weight += m.weight;
    }
    Aggregate {
        avg_millis: total_ms / queries.len() as f64,
        avg_weight: total_weight / queries.len() as f64,
    }
}

/// Average ratio (in %) of `candidate` weights to `reference` weights over the
/// queries where the reference found a region — the paper's "relative ratio"
/// accuracy metric of Section 7.2.2.
pub fn relative_ratio(reference: &[f64], candidate: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut counted = 0usize;
    for (r, c) in reference.iter().zip(candidate) {
        if *r > 0.0 {
            sum += (c / r) * 100.0;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_ratio_basics() {
        assert_eq!(relative_ratio(&[], &[]), 0.0);
        assert_eq!(relative_ratio(&[0.0], &[1.0]), 0.0);
        let r = relative_ratio(&[1.0, 2.0], &[0.5, 2.0]);
        assert!((r - 75.0).abs() < 1e-9);
    }

    #[test]
    fn scale_from_env_defaults_to_tiny() {
        std::env::remove_var("LCMSR_SCALE");
        assert_eq!(scale_from_env(), NetworkScale::Tiny);
    }

    #[test]
    fn workers_flag_is_extracted_from_args() {
        let mut args: Vec<String> = ["serve", "--workers", "3", "--addr", "x"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        assert_eq!(take_workers_flag(&mut args), Some(3));
        assert_eq!(args, vec!["serve", "--addr", "x"]);

        let mut args: Vec<String> = vec!["--workers=7".into(), "table1".into()];
        assert_eq!(take_workers_flag(&mut args), Some(7));
        assert_eq!(args, vec!["table1"]);

        let mut args: Vec<String> = vec!["table1".into()];
        assert_eq!(take_workers_flag(&mut args), None);
        assert_eq!(args, vec!["table1"]);

        // A zero count clamps to one worker.
        let mut args: Vec<String> = vec!["--workers".into(), "0".into()];
        assert_eq!(take_workers_flag(&mut args), Some(1));

        // Malformed and valueless flags are consumed (not left behind to
        // confuse later parsing) and yield None.
        let mut args: Vec<String> = vec!["serve".into(), "--workers".into(), "abc".into()];
        assert_eq!(take_workers_flag(&mut args), None);
        assert_eq!(args, vec!["serve"]);
        let mut args: Vec<String> = vec!["serve".into(), "--workers".into()];
        assert_eq!(take_workers_flag(&mut args), None);
        assert_eq!(args, vec!["serve"]);
        let mut args: Vec<String> = vec!["--workers=bad".into()];
        assert_eq!(take_workers_flag(&mut args), None);
        assert!(args.is_empty());
    }

    #[test]
    fn scale_flag_is_extracted_from_args() {
        let mut args: Vec<String> = ["scale", "--scale", "huge", "--workers", "4"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        assert_eq!(take_scale_flag(&mut args), Some(NetworkScale::Huge));
        assert_eq!(args, vec!["scale", "--workers", "4"]);

        let mut args: Vec<String> = vec!["--scale=large".into(), "table1".into()];
        assert_eq!(take_scale_flag(&mut args), Some(NetworkScale::Large));
        assert_eq!(args, vec!["table1"]);

        let mut args: Vec<String> = vec!["table1".into()];
        assert_eq!(take_scale_flag(&mut args), None);
        assert_eq!(args, vec!["table1"]);

        // Malformed and valueless flags are consumed (reported on stderr, not
        // left behind to confuse later parsing) and yield None.
        let mut args: Vec<String> = vec!["dump".into(), "--scale".into(), "enormous".into()];
        assert_eq!(take_scale_flag(&mut args), None);
        assert_eq!(args, vec!["dump"]);
        let mut args: Vec<String> = vec!["dump".into(), "--scale".into()];
        assert_eq!(take_scale_flag(&mut args), None);
        assert_eq!(args, vec!["dump"]);
        let mut args: Vec<String> = vec!["--scale=".into()];
        assert_eq!(take_scale_flag(&mut args), None);
        assert!(args.is_empty());
    }

    #[test]
    fn scale_value_parsing_matches_env_semantics() {
        assert_eq!(parse_scale_value(None), NetworkScale::Tiny);
        assert_eq!(parse_scale_value(Some("")), NetworkScale::Tiny);
        assert_eq!(parse_scale_value(Some("tiny")), NetworkScale::Tiny);
        assert_eq!(parse_scale_value(Some("small")), NetworkScale::Small);
        assert_eq!(parse_scale_value(Some("medium")), NetworkScale::Medium);
        assert_eq!(parse_scale_value(Some("large")), NetworkScale::Large);
        assert_eq!(parse_scale_value(Some("huge")), NetworkScale::Huge);
        // Unknown names report on stderr and fall back to tiny.
        assert_eq!(parse_scale_value(Some("enormous")), NetworkScale::Tiny);
    }

    #[test]
    fn workers_value_parsing_matches_env_semantics() {
        assert!(parse_workers_value(None) >= 1);
        assert_eq!(parse_workers_value(Some("5")), 5);
        assert!(parse_workers_value(Some("junk")) >= 1);
        assert!(parse_workers_value(Some("0")) >= 1);
        assert!(workers_from_env() >= 1);
    }

    #[test]
    fn workload_and_measurement_roundtrip() {
        let dataset = ny_dataset(NetworkScale::Tiny);
        let queries = make_workload(&dataset, 3, 2, 1.5, 1.0, 7);
        assert_eq!(queries.len(), 3);
        let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
        let alpha = default_tgen_alpha(&dataset, &queries);
        assert!(alpha >= 1.0);
        let m = measure(
            &engine,
            &queries[0],
            &Algorithm::Greedy(GreedyParams::default()),
        );
        assert!(m.millis >= 0.0);
        let agg = aggregate(
            &engine,
            &queries,
            &Algorithm::Greedy(GreedyParams::default()),
        );
        assert!(agg.avg_millis >= 0.0);
    }
}
