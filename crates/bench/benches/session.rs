//! Interactive exploration-session benchmark: the response cache and the
//! delta-prepare path under a pan/zoom/keyword-refine trace — the workload
//! the cache exists for, where successive requests repeat or overlap.
//!
//! Like `scale` this is a plain harness emitting a machine-readable
//! `BENCH_session.json` (path overridable via `LCMSR_BENCH_OUT`) that CI
//! archives.  Over an NY-like dataset at `LCMSR_SCALE` it drives one
//! synthetic session trace — an initial view, three eastward pans, a zoom
//! in, a zoom out, a keyword refinement, and pans under both keyword sets —
//! through three modes:
//!
//! * **cold** — `cache: false` on a fresh workspace: the classic path, full
//!   grid rescore and solve per step (the baseline the paper's reader runs);
//! * **warm** — `cache: true` on one session workspace, first pass: every
//!   step misses the response cache, but overlapping same-keyword steps
//!   delta-prepare from the previous step's scores;
//! * **replay** — the same trace again on the warm cache: every step is a
//!   response-cache hit (pan back / revisit, the dominant interactive case).
//!
//! Every mode's regions are asserted bit-identical (`{:?}` on the region
//! list — Debug's shortest-roundtrip float rendering distinguishes bit
//! patterns, `-0.0` included).  With `LCMSR_BENCH_STRICT` set the run fails
//! when the replay pass is not at least `LCMSR_BENCH_MIN_SESSION_SPEEDUP`
//! (default 3.0) times faster than the cold pass after one noise re-measure.

use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use lcmsr_roadnet::geo::Rect;

/// One session step: a label for the report plus the derived query.
struct Step {
    label: &'static str,
    query: LcmsrQuery,
}

/// Shifts a rect by (dx, dy) fractions of its own extent (a pan).
fn pan(rect: &Rect, dx: f64, dy: f64) -> Rect {
    let (w, h) = (rect.width(), rect.height());
    Rect::new(
        rect.min_x + dx * w,
        rect.min_y + dy * h,
        rect.max_x + dx * w,
        rect.max_y + dy * h,
    )
}

/// Scales a rect around its center (a zoom; `factor < 1` zooms in).
fn zoom(rect: &Rect, factor: f64) -> Rect {
    Rect::centered(rect.center(), rect.width() * factor, rect.height() * factor)
}

/// The synthetic exploration trace: 10 distinct steps over one base view.
///
/// Pans move by up to 25% of the view (≥75% overlap with the previous rect)
/// and the zoom-out stays at 1.3x (59% overlap) so the same-keyword steps
/// clear the engine's [`SESSION_OVERLAP_THRESHOLD`] and exercise the delta
/// path; the keyword refinement and the return to the full keyword set break
/// the session on purpose (a delta from foreign keyword scores would be
/// wrong).  Pans head toward whichever side of `bounds` (the network's node
/// extent) has room, scaled down when the slack runs short — the query
/// generator places the base view wherever objects are, which can be a
/// corner, and panning off the populated area would make a step's region
/// empty (a query error, not a session step).
fn session_trace(base: &LcmsrQuery, bounds: &Rect) -> Vec<Step> {
    let full = base.keywords.clone();
    let refined: Vec<String> = full[..full.len().saturating_sub(1).max(1)].to_vec();
    let delta = base.delta;
    let r0 = base.region_of_interest;
    let (w, h) = (r0.width(), r0.height());
    // Three horizontal pan steps and one vertical each way; cap the per-step
    // fraction so the farthest rect stays inside the slack on the chosen side.
    let (room_e, room_w) = (bounds.max_x - r0.max_x, r0.min_x - bounds.min_x);
    let sx = if room_e >= room_w { 1.0 } else { -1.0 };
    let fx = sx * (room_e.max(room_w) / (3.0 * w)).clamp(0.001, 0.25);
    let (room_n, room_s) = (bounds.max_y - r0.max_y, r0.min_y - bounds.min_y);
    let sy = if room_n >= room_s { 1.0 } else { -1.0 };
    let fy = sy * (room_n.max(room_s) / h).clamp(0.001, 0.25);
    let q = |label, keywords: &Vec<String>, rect| Step {
        label,
        query: LcmsrQuery::new(keywords.clone(), delta, rect).expect("trace query is valid"),
    };
    let r1 = pan(&r0, fx, 0.0);
    let r2 = pan(&r1, fx, 0.0);
    let r3 = pan(&r2, fx, 0.0);
    let r4 = zoom(&r3, 0.7);
    let r5 = zoom(&r4, 1.3);
    let r7 = pan(&r5, 0.0, fy);
    // Half-phase pans: distinct from every earlier rect, still on the side
    // of the base view that is known to have slack.
    let r8 = pan(&r0, 0.5 * fx, 0.0);
    let r9 = pan(&r8, 0.0, 0.5 * fy);
    vec![
        q("view", &full, r0),
        q("pan_x", &full, r1),
        q("pan_x", &full, r2),
        q("pan_x", &full, r3),
        q("zoom_in", &full, r4),
        q("zoom_out", &full, r5),
        q("refine", &refined, r5),
        q("pan_y", &refined, r7),
        q("restore", &full, r8),
        q("pan_back", &full, r9),
    ]
}

/// Runs the whole trace once, returning per-step outcomes.
fn run_trace(
    engine: &LcmsrEngine<'_>,
    workspace: &mut QueryWorkspace,
    steps: &[Step],
    alpha: f64,
    cache: bool,
) -> Vec<QueryOutcome> {
    steps
        .iter()
        .map(|step| {
            let request =
                QueryRequest::new(&step.query, Algorithm::Tgen(TgenParams { alpha })).cache(cache);
            engine
                .execute_with(workspace, &request)
                .unwrap_or_else(|e| {
                    panic!(
                        "session step {} over {:?} failed: {e:?}",
                        step.label, step.query.region_of_interest
                    )
                })
        })
        .collect()
}

/// Bit-exact fingerprints of a pass's regions, one string per step.
fn fingerprints(outcomes: &[QueryOutcome]) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| format!("{:?}", o.regions))
        .collect()
}

fn main() {
    let scale = scale_from_env();
    let rounds = env_usize("LCMSR_SESSION_ROUNDS", 3).max(1);
    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let min_speedup = env_f64("LCMSR_BENCH_MIN_SESSION_SPEEDUP", 3.0);

    println!("session (building NY-like dataset at {scale:?}…)");
    let dataset = ny_dataset(scale);
    let params = dataset.default_query_params(2026);
    let base = make_workload(
        &dataset,
        1,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        2026,
    );
    let base = base.first().expect("workload generated a base query");
    let bounds = dataset.network.bounding_rect().expect("network has nodes");
    let steps = session_trace(base, &bounds);
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let alpha = default_tgen_alpha(&dataset, std::slice::from_ref(base));

    // Cold reference: classic path, cache off, dedicated workspace.  Run once
    // for fingerprints and per-step prepare stats, then timed.
    let mut cold_ws = QueryWorkspace::new();
    let cold_outcomes = run_trace(&engine, &mut cold_ws, &steps, alpha, false);
    let cold_prints = fingerprints(&cold_outcomes);
    let cold_grid_score: f64 = cold_outcomes
        .iter()
        .map(|o| o.stats.grid_score_time.as_secs_f64())
        .sum();
    assert!(
        cold_outcomes.iter().all(|o| !o.stats.cache),
        "cold pass must stay off the cache path"
    );

    // Warm first pass: cache on, empty cache — all misses, delta-prepare on
    // the overlapping same-keyword steps.  Timed once (repeating it would
    // turn the misses into hits).
    engine.response_cache().clear();
    let mut session_ws = QueryWorkspace::new();
    let warm_start = std::time::Instant::now();
    let warm_outcomes = run_trace(&engine, &mut session_ws, &steps, alpha, true);
    let warm_secs = warm_start.elapsed().as_secs_f64();
    let delta_steps = warm_outcomes
        .iter()
        .filter(|o| o.stats.delta_prepare)
        .count();
    let delta_grid_score: f64 = warm_outcomes
        .iter()
        .filter(|o| o.stats.delta_prepare)
        .map(|o| o.stats.grid_score_time.as_secs_f64())
        .sum();
    assert!(
        warm_outcomes
            .iter()
            .all(|o| o.stats.cache && !o.stats.cache_hit),
        "first warm pass over an empty cache must miss every step"
    );
    assert!(
        delta_steps >= steps.len() / 2,
        "the trace is built to delta-prepare most steps, got {delta_steps}/{}",
        steps.len()
    );

    // Replay + timed passes, strict gate with one noise re-measure.
    let mut cold_secs = 0.0;
    let mut replay_secs = 0.0;
    let mut replay_speedup = 0.0;
    for attempt in 0..2 {
        cold_secs = best_secs(rounds, || {
            let outcomes = run_trace(&engine, &mut cold_ws, &steps, alpha, false);
            assert_eq!(outcomes.len(), steps.len());
        });
        replay_secs = best_secs(rounds, || {
            let outcomes = run_trace(&engine, &mut session_ws, &steps, alpha, true);
            assert!(
                outcomes.iter().all(|o| o.stats.cache_hit),
                "replay over a warm cache must hit every step"
            );
        });
        replay_speedup = cold_secs / replay_secs.max(1e-12);
        if !strict || replay_speedup >= min_speedup {
            break;
        }
        if attempt == 0 {
            eprintln!(
                "  replay speedup {replay_speedup:.2}x below {min_speedup:.1}x target; \
                 re-measuring once"
            );
        }
    }

    // Bit-identity: warm misses, delta steps and cache hits all reproduce the
    // cold regions exactly.
    let replay_outcomes = run_trace(&engine, &mut session_ws, &steps, alpha, true);
    let warm_prints = fingerprints(&warm_outcomes);
    let replay_prints = fingerprints(&replay_outcomes);
    let identical = warm_prints == cold_prints && replay_prints == cold_prints;

    let per = steps.len() as f64;
    let delta_speedup =
        (cold_grid_score / per) / (delta_grid_score / (delta_steps.max(1) as f64)).max(1e-12);
    let cache = engine.response_cache();
    println!(
        "session (scale {scale:?}, {} steps: {})",
        steps.len(),
        steps
            .iter()
            .map(|s| s.label)
            .collect::<Vec<_>>()
            .join(" → ")
    );
    println!(
        "  cold pass       : {:>10.1} µs/step (full rescore + solve)",
        cold_secs / per * 1e6
    );
    println!(
        "  warm first pass : {:>10.1} µs/step ({delta_steps}/{} delta-prepared)",
        warm_secs / per * 1e6,
        steps.len()
    );
    println!(
        "  replay pass     : {:>10.1} µs/step (all cache hits, {replay_speedup:.2}x)",
        replay_secs / per * 1e6
    );
    println!(
        "  grid score      : {:>10.1} µs/step cold vs {:.1} µs/step delta ({delta_speedup:.2}x)",
        cold_grid_score / per * 1e6,
        delta_grid_score / delta_steps.max(1) as f64 * 1e6
    );
    println!(
        "  cache counters  : {} hits, {} misses, {} stale, {} entries, {} bytes",
        cache.hits(),
        cache.misses(),
        cache.stale(),
        cache.len(),
        cache.bytes()
    );
    println!("  results identical: {identical}");

    assert!(
        identical,
        "cache hits and delta re-queries must be bit-identical to cold runs"
    );
    if strict {
        assert!(
            replay_speedup >= min_speedup,
            "cached replay speedup {replay_speedup:.2}x below the {min_speedup:.1}x target"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_session.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"session\",\n  \"scale\": \"{scale:?}\",\n  \"steps\": {},\n  \"delta_steps\": {delta_steps},\n  \"cold_us_per_step\": {:.3},\n  \"warm_first_us_per_step\": {:.3},\n  \"replay_us_per_step\": {:.3},\n  \"replay_speedup\": {replay_speedup:.4},\n  \"grid_score_cold_us_per_step\": {:.3},\n  \"grid_score_delta_us_per_step\": {:.3},\n  \"delta_prepare_speedup\": {delta_speedup:.4},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_stale\": {},\n  \"cache_entries\": {},\n  \"cache_bytes\": {},\n  \"identical_results\": {identical}\n}}\n",
        steps.len(),
        cold_secs / per * 1e6,
        warm_secs / per * 1e6,
        replay_secs / per * 1e6,
        cold_grid_score / per * 1e6,
        delta_grid_score / delta_steps.max(1) as f64 * 1e6,
        cache.hits(),
        cache.misses(),
        cache.stale(),
        cache.len(),
        cache.bytes(),
    );
    std::fs::write(&out_path, json).expect("write BENCH_session.json");
    println!("  wrote {out_path}");
}
