//! Continent-scale benchmark: the sharded grid index and the rect-bounded
//! prepare phase at 1M+ nodes — the tier where prepare and solve costs
//! actually compete and the PR 3–5 solve wins become credible.
//!
//! Like `batch_throughput` this is a plain harness emitting a
//! machine-readable `BENCH_scale.json` (path overridable via
//! `LCMSR_BENCH_OUT`) that CI archives.  Over an NY-like network at
//! `LCMSR_SCALE` (CI's `scale-smoke` job runs `huge`, ~1M nodes) it measures:
//!
//! * **index build** — `ObjectCollection::build_with_workers` at 1 worker vs
//!   `LCMSR_SCALE_WORKERS` (default 4): the lock-per-shard parallel grid fill
//!   against the sequential insert loop, same vocabulary, same postings;
//! * **prepare** — `LcmsrEngine::prepare_with` at 1 prepare worker vs the
//!   parallel fan-out (sharded scoring + row-banded `RegionView`), per query,
//!   with the grid-score/graph-build split from `PrepareBreakdown`;
//! * **peak prepare RSS** — `VmHWM` deltas around each prepare pass (peak is
//!   reset via `/proc/self/clear_refs` where the kernel allows it);
//! * **scratch locality** — the prepare scratch (`member_table_len`) must
//!   stay within the widest query rect's member-id band (the epoch table is
//!   offset-rebased at the smallest member id), never the network size.
//!
//! Parallel-path output is asserted bit-identical to the sequential path
//! (query-graph CSR content and node weights compared via `to_bits`).  With
//! `LCMSR_BENCH_STRICT` set and ≥ `LCMSR_SCALE_WORKERS` CPUs available, the
//! run fails when the parallel prepare speedup stays below
//! `LCMSR_BENCH_MIN_PREPARE_SPEEDUP` (default 2.0) after one noise
//! re-measure; on smaller machines the measured ratio is reported only.

use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use lcmsr_geotext::collection::ObjectCollection;

/// Peak resident set (`VmHWM`) in KiB, when the platform exposes it.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resets the peak-RSS watermark so the next [`peak_rss_kib`] reading covers
/// only the work in between.  Best-effort: a kernel that rejects the write
/// leaves the watermark monotone, which only ever over-reports the peak.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Per-node (global id, weight bits, scaled weight) in CSR order plus
/// per-edge (a, b, length bits).
type GraphFingerprint = (Vec<(u32, u64, u64)>, Vec<(u32, u32, u64)>);

/// Bit-exact content of a prepared query graph: per-node (global id, weight
/// bits, scaled weight) in CSR order plus every edge with its length bits.
fn graph_fingerprint(graph: &QueryGraph) -> GraphFingerprint {
    let nodes = graph
        .node_indices()
        .map(|v| {
            (
                graph.global_node(v).0,
                graph.weight(v).to_bits(),
                graph.scaled_weight(v),
            )
        })
        .collect();
    let edges = graph
        .edges()
        .iter()
        .map(|e| (e.a, e.b, e.length.to_bits()))
        .collect();
    (nodes, edges)
}

fn main() {
    let scale = scale_from_env();
    let num_queries = env_usize("LCMSR_SCALE_QUERIES", 8).max(1);
    let workers = env_usize("LCMSR_SCALE_WORKERS", 4).max(1);
    let rounds = env_usize("LCMSR_SCALE_ROUNDS", 2).max(1);
    let build_rounds = env_usize("LCMSR_SCALE_BUILD_ROUNDS", 1).max(1);
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let min_speedup = env_f64("LCMSR_BENCH_MIN_PREPARE_SPEEDUP", 2.0);

    println!("scale (building NY-like dataset at {scale:?}…)");
    let gen_start = std::time::Instant::now();
    let dataset = ny_dataset(scale);
    let gen_secs = gen_start.elapsed().as_secs_f64();
    let node_count = dataset.network.node_count();
    let object_count = dataset.collection.len();
    println!(
        "  dataset         : {} nodes, {} edges, {object_count} objects in {gen_secs:.1} s",
        node_count,
        dataset.network.edge_count()
    );

    // -- index build: sequential insert loop vs lock-per-shard parallel fill --
    // Both paths re-clone the object set inside the timed closure, so the
    // clone overhead cancels in the ratio.
    let objects = dataset.collection.objects().to_vec();
    let cell_size = dataset.config.cell_size;
    let build_seq = best_secs(build_rounds, || {
        let built =
            ObjectCollection::build_with_workers(&dataset.network, objects.clone(), cell_size, 1)
                .expect("sequential build");
        assert_eq!(built.len(), object_count);
    });
    let mut parallel_collection = None;
    let build_par = best_secs(build_rounds, || {
        let built = ObjectCollection::build_with_workers(
            &dataset.network,
            objects.clone(),
            cell_size,
            workers,
        )
        .expect("parallel build");
        parallel_collection = Some(built);
    });
    let build_speedup = build_seq / build_par.max(1e-12);
    drop(objects);
    // The parallel build must index identically: same postings mass per node
    // on a full-extent probe (the dedicated grid/collection tests cover the
    // per-shard bit-identity; this guards the huge-scale instantiation).
    let parallel_collection = parallel_collection.expect("parallel build ran");
    assert_eq!(parallel_collection.len(), object_count);
    assert_eq!(
        parallel_collection.keyword_count(),
        dataset.collection.keyword_count()
    );
    drop(parallel_collection);

    // -- prepare: sequential vs parallel fan-out ------------------------------
    let params = dataset.default_query_params(2026);
    let queries = make_workload(
        &dataset,
        num_queries,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        2026,
    );
    assert!(!queries.is_empty(), "scale workload generated no queries");
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let alpha = default_tgen_alpha(&dataset, &queries);

    // Reference pass: sequential fingerprints and scratch size (cold).
    let mut workspace = QueryWorkspace::new();
    engine.set_prepare_workers(1);
    let mut reference = Vec::new();
    for q in &queries {
        let graph = engine
            .prepare_with(&mut workspace, q, alpha)
            .expect("prepare");
        reference.push(graph_fingerprint(&graph));
        engine.release(&mut workspace, graph);
    }
    // Warm split pass: the grid-score / graph-build breakdown on reused
    // scratch, comparable to the timed passes below (the cold reference pass
    // pays page faults that would drown the split).
    let mut grid_score_secs = 0.0;
    let mut graph_build_secs = 0.0;
    for q in &queries {
        let graph = engine
            .prepare_with(&mut workspace, q, alpha)
            .expect("prepare");
        let split = workspace.prepare_breakdown();
        grid_score_secs += split.grid_score_time.as_secs_f64();
        graph_build_secs += split.graph_build_time.as_secs_f64();
        engine.release(&mut workspace, graph);
    }
    grid_score_secs /= queries.len() as f64;
    graph_build_secs /= queries.len() as f64;
    // The rect-bounded scratch contract: after preparing every query, the
    // member table covers the largest query rect's cell cover — not the
    // network.  At scale the workload rect is a small fraction of the extent,
    // so the scratch must be far below the node count.
    let member_table_len = workspace.member_table_len();
    let mut rect_nodes = 0usize;
    let mut rect_id_band = 0usize;
    for q in &queries {
        let in_rect = dataset.network.nodes_in_rect(&q.region_of_interest);
        rect_nodes = rect_nodes.max(in_rect.len());
        // The epoch table is offset-rebased at the smallest member id, so its
        // high-water size is the widest member-id *band* across queries — on a
        // row-major network that is (rect rows x network cols), well above the
        // member count but still far below |V|.
        let band = match (in_rect.iter().min(), in_rect.iter().max()) {
            (Some(lo), Some(hi)) => hi.index() - lo.index() + 1,
            _ => 0,
        };
        rect_id_band = rect_id_band.max(band);
    }
    let scratch_ratio = member_table_len as f64 / node_count.max(1) as f64;

    // Timed passes, strict gate with one noise re-measure.
    let mut seq_secs = 0.0;
    let mut par_secs = 0.0;
    let mut speedup = 0.0;
    let mut seq_peak_kib = 0u64;
    let mut par_peak_kib = 0u64;
    for attempt in 0..2 {
        engine.set_prepare_workers(1);
        reset_peak_rss();
        let rss_floor = peak_rss_kib().unwrap_or(0);
        seq_secs = best_secs(rounds, || {
            for q in &queries {
                let g = engine
                    .prepare_with(&mut workspace, q, alpha)
                    .expect("prepare");
                engine.release(&mut workspace, g);
            }
        }) / queries.len() as f64;
        seq_peak_kib = peak_rss_kib().unwrap_or(0).saturating_sub(rss_floor);
        engine.set_prepare_workers(workers);
        reset_peak_rss();
        let rss_floor = peak_rss_kib().unwrap_or(0);
        par_secs = best_secs(rounds, || {
            for q in &queries {
                let g = engine
                    .prepare_with(&mut workspace, q, alpha)
                    .expect("prepare");
                engine.release(&mut workspace, g);
            }
        }) / queries.len() as f64;
        par_peak_kib = peak_rss_kib().unwrap_or(0).saturating_sub(rss_floor);
        speedup = seq_secs / par_secs.max(1e-12);
        if !strict || speedup >= min_speedup || cpus < workers {
            break;
        }
        if attempt == 0 {
            eprintln!("  speedup {speedup:.2}x below {min_speedup:.1}x target; re-measuring once");
        }
    }

    // Parallel prepare must be bit-identical to the sequential reference.
    engine.set_prepare_workers(workers);
    let mut identical = true;
    for (q, expect) in queries.iter().zip(&reference) {
        let graph = engine
            .prepare_with(&mut workspace, q, alpha)
            .expect("prepare");
        if &graph_fingerprint(&graph) != expect {
            identical = false;
        }
        engine.release(&mut workspace, graph);
    }

    println!(
        "scale (scale {scale:?}, {} queries, {workers} workers, {cpus} CPUs)",
        queries.len()
    );
    println!(
        "  index build     : {build_seq:>10.2} s sequential, {build_par:.2} s at {workers} workers  ({build_speedup:.2}x)"
    );
    println!("  prepare seq     : {:>10.1} µs/query", seq_secs * 1e6);
    println!(
        "  prepare par({workers})  : {:>10.1} µs/query  ({speedup:.2}x)",
        par_secs * 1e6
    );
    println!(
        "  prepare split   : {:>10.1} µs grid score + {:.1} µs graph build",
        grid_score_secs * 1e6,
        graph_build_secs * 1e6
    );
    println!(
        "  peak prepare RSS: {:>10.1} MiB sequential, {:.1} MiB parallel",
        seq_peak_kib as f64 / 1024.0,
        par_peak_kib as f64 / 1024.0
    );
    println!(
        "  scratch         : {member_table_len} member-table entries for ≤ {rect_nodes} rect nodes \
         (id band {rect_id_band}; {:.2}% of {node_count} network nodes)",
        scratch_ratio * 100.0
    );
    println!("  results identical: {identical}");

    assert!(
        identical,
        "parallel prepare must be bit-identical to the sequential path"
    );
    // The scratch stays bounded by the rect's member-id band: the epoch table
    // never touches node ids outside the widest query band, and on large
    // networks must additionally stay an order of magnitude under |V|.
    assert!(
        member_table_len <= rect_id_band.max(4096),
        "prepare scratch ({member_table_len} entries) exceeds the widest query \
         rect id band ({rect_id_band} ids)"
    );
    if node_count >= 100_000 {
        assert!(
            member_table_len * 10 <= node_count,
            "prepare scratch ({member_table_len}) must stay an order of magnitude \
             below the network ({node_count} nodes)"
        );
    }
    if strict && cpus >= workers {
        assert!(
            speedup >= min_speedup,
            "parallel prepare speedup {speedup:.2}x below the {min_speedup:.1}x target \
             with {cpus} CPUs"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"scale\": \"{scale:?}\",\n  \"nodes\": {node_count},\n  \"edges\": {},\n  \"objects\": {object_count},\n  \"queries\": {},\n  \"workers\": {workers},\n  \"cpus\": {cpus},\n  \"dataset_build_s\": {gen_secs:.3},\n  \"index_build_seq_s\": {build_seq:.3},\n  \"index_build_par_s\": {build_par:.3},\n  \"index_build_speedup\": {build_speedup:.4},\n  \"prepare_seq_us_per_query\": {:.3},\n  \"prepare_par_us_per_query\": {:.3},\n  \"prepare_speedup\": {speedup:.4},\n  \"grid_score_us_per_query\": {:.3},\n  \"graph_build_us_per_query\": {:.3},\n  \"prepare_peak_rss_seq_kib\": {seq_peak_kib},\n  \"prepare_peak_rss_par_kib\": {par_peak_kib},\n  \"member_table_len\": {member_table_len},\n  \"max_rect_nodes\": {rect_nodes},\n  \"max_rect_id_band\": {rect_id_band},\n  \"scratch_vs_network\": {scratch_ratio:.6},\n  \"identical_results\": {identical}\n}}\n",
        dataset.network.edge_count(),
        queries.len(),
        seq_secs * 1e6,
        par_secs * 1e6,
        grid_score_secs * 1e6,
        graph_build_secs * 1e6,
    );
    std::fs::write(&out_path, json).expect("write BENCH_scale.json");
    println!("  wrote {out_path}");
}
