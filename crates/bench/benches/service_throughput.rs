//! Service-throughput benchmark: N closed-loop client threads drive a live
//! `lcmsr_service` server over loopback HTTP, once against the micro-batching
//! scheduler and once against the one-engine-call-per-request baseline
//! (`max_batch = 1`).  Both modes serve the same synthetic dataset through
//! the same HTTP stack, so the measured difference is the scheduler's.
//!
//! Like `batch_throughput` this is a plain harness emitting a
//! machine-readable `BENCH_service.json` (override via `LCMSR_BENCH_OUT`).
//! Knobs: `LCMSR_SCALE` (default `tiny`), `LCMSR_SERVICE_CLIENTS` (default
//! 8), `LCMSR_SERVICE_REQUESTS` per client per round (default 8),
//! `LCMSR_SERVICE_ROUNDS` best-of rounds (default 2).
//!
//! The strict CI gate (`LCMSR_BENCH_STRICT`) requires batched throughput ≥
//! the unbatched path (`LCMSR_BENCH_MIN_SERVICE_SPEEDUP`, default 1.0) and
//! re-measures twice before failing to ride out noisy neighbours; it also
//! asserts both modes returned identical regions for every request.

use lcmsr_bench::*;
use lcmsr_service::http::ServerConfig;
use lcmsr_service::{
    leak_engine, serve, BatchConfig, DiagnosticsConfig, HttpClient, QueryRequest, QueryResponse,
    ServiceConfig,
};
use std::time::Duration;

/// Runs one closed-loop measurement: `clients` threads, each issuing every
/// request body `requests` times over a keep-alive connection.  Returns the
/// wall-clock seconds and the region parts of all responses (client-major,
/// request-minor) for the identical-results check.
fn drive(
    addr: std::net::SocketAddr,
    bodies: &[String],
    clients: usize,
    requests: usize,
) -> (f64, Vec<String>) {
    let start = std::time::Instant::now();
    let mut all_regions: Vec<(usize, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut regions = Vec::with_capacity(requests * bodies.len());
                    for r in 0..requests {
                        let body = &bodies[(c + r) % bodies.len()];
                        let (status, response) = client.post("/query", body).expect("request");
                        assert_eq!(status, 200, "{response}");
                        let parsed = QueryResponse::from_body(&response).expect("valid response");
                        // Keep only the deterministic part (stats contain
                        // timings, which differ run to run).
                        regions.push(format!("{:?}", parsed.regions));
                    }
                    (c, regions)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let secs = start.elapsed().as_secs_f64();
    all_regions.sort_by_key(|(c, _)| *c);
    (secs, all_regions.into_iter().flat_map(|(_, r)| r).collect())
}

fn main() {
    let scale = scale_from_env();
    let clients = env_usize("LCMSR_SERVICE_CLIENTS", 8).max(1);
    let requests = env_usize("LCMSR_SERVICE_REQUESTS", 8).max(1);
    let rounds = env_usize("LCMSR_SERVICE_ROUNDS", 2).max(1);
    let workers = workers_from_env();
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let dataset = ny_dataset(scale);
    let params = dataset.default_query_params(777);
    let queries = make_workload(
        &dataset,
        8,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        777,
    );
    let alpha = default_tgen_alpha(&dataset, &queries);
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| {
            QueryRequest {
                algorithm: "tgen".into(),
                keywords: q.keywords.clone(),
                rect: q.region_of_interest,
                budget: q.delta,
                k: None,
                alpha: Some(alpha),
                beta: None,
                mu: None,
                deadline_ms: None,
                priority: None,
                cache: None,
            }
            .to_body()
        })
        .collect();
    let engine = leak_engine(dataset.network, dataset.collection);

    let serve_mode = |max_batch: usize| {
        serve(
            engine,
            ServiceConfig {
                server: ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    // Both modes get enough handler threads that the HTTP
                    // pool never caps concurrency; what differs is only how
                    // queries reach the engine.
                    http_workers: clients + 2,
                    max_body_bytes: 1024 * 1024,
                    ..ServerConfig::default()
                },
                batch: BatchConfig {
                    max_batch,
                    max_delay: Duration::from_millis(1),
                    queue_capacity: (clients * 4).max(64),
                    batch_workers: workers,
                },
                diagnostics: DiagnosticsConfig::default(),
            },
        )
        .expect("service must start")
    };

    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let min_speedup = env_f64("LCMSR_BENCH_MIN_SERVICE_SPEEDUP", 1.0);

    let mut baseline_secs = f64::INFINITY;
    let mut batched_secs = f64::INFINITY;
    let mut speedup = 0.0;
    let mut identical = false;
    let mut mean_batch_size = 0.0;
    let mut p50_us = 0;
    let mut p99_us = 0;
    // The strict gate re-measures the whole comparison up to twice: loopback
    // servers on shared runners see real scheduling noise.
    for attempt in 0..3 {
        // --- baseline: one engine call per request ------------------------
        let baseline = serve_mode(1);
        let _warmup = drive(baseline.addr(), &bodies, clients, 1);
        for _ in 0..rounds {
            let (secs, _) = drive(baseline.addr(), &bodies, clients, requests);
            baseline_secs = baseline_secs.min(secs);
        }
        let (_, baseline_regions) = drive(baseline.addr(), &bodies, clients, requests);
        baseline.shutdown();

        // --- micro-batched scheduler --------------------------------------
        let batched = serve_mode((clients * 2).max(8));
        let _warmup = drive(batched.addr(), &bodies, clients, 1);
        for _ in 0..rounds {
            let (secs, _) = drive(batched.addr(), &bodies, clients, requests);
            batched_secs = batched_secs.min(secs);
        }
        let (_, batched_regions) = drive(batched.addr(), &bodies, clients, requests);
        mean_batch_size = batched.metrics().mean_batch_size();
        p50_us = batched.metrics().latency.quantile_us(0.50);
        p99_us = batched.metrics().latency.quantile_us(0.99);
        batched.shutdown();

        identical = baseline_regions == batched_regions;
        speedup = baseline_secs / batched_secs.max(1e-12);
        if !strict || (identical && speedup >= min_speedup) {
            break;
        }
        if attempt < 2 {
            eprintln!(
                "  batched/unbatched {speedup:.2}x below {min_speedup:.2}x target; re-measuring"
            );
        }
    }

    let total = (clients * requests) as f64;
    let baseline_qps = total / baseline_secs;
    let batched_qps = total / batched_secs;
    println!(
        "service_throughput (scale {scale:?}, {clients} clients x {requests} reqs, {workers} engine workers, {cpus} CPUs)"
    );
    println!(
        "  unbatched (per-request) : {:>9.1} ms total  ({baseline_qps:.1} q/s)",
        baseline_secs * 1e3
    );
    println!(
        "  micro-batched           : {:>9.1} ms total  ({batched_qps:.1} q/s)",
        batched_secs * 1e3
    );
    println!(
        "  speedup                 : {speedup:.2}x   mean batch {mean_batch_size:.2}   p50 {p50_us} µs   p99 {p99_us} µs   identical: {identical}"
    );

    assert!(
        identical,
        "batched and unbatched modes must serve identical regions"
    );
    if strict {
        assert!(
            speedup >= min_speedup,
            "micro-batched throughput {batched_qps:.1} q/s fell below the unbatched \
             baseline {baseline_qps:.1} q/s ({speedup:.2}x < {min_speedup:.2}x)"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"service_throughput\",\n  \"scale\": \"{scale:?}\",\n  \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \"engine_workers\": {workers},\n  \"cpus\": {cpus},\n  \"unbatched_ms\": {:.3},\n  \"batched_ms\": {:.3},\n  \"unbatched_qps\": {baseline_qps:.2},\n  \"batched_qps\": {batched_qps:.2},\n  \"speedup\": {speedup:.4},\n  \"mean_batch_size\": {mean_batch_size:.3},\n  \"latency_p50_us\": {p50_us},\n  \"latency_p99_us\": {p99_us},\n  \"identical_results\": {identical}\n}}\n",
        baseline_secs * 1e3,
        batched_secs * 1e3,
    );
    std::fs::write(&out_path, json).expect("write BENCH_service.json");
    println!("  wrote {out_path}");
}
