//! Tracing-overhead benchmark: what span instrumentation costs when it is off.
//!
//! PR 9 threads a `TraceCollector` through the engine and every solver hot
//! loop.  The design contract is the same as the inert `CancelToken`: a
//! query that did not ask for tracing must see one predicted branch per
//! instrumentation point — nothing allocated, nothing timed, nothing stored.
//! This plain harness pins that contract from three angles and emits a
//! machine-readable `BENCH_trace.json` (path overridable via
//! `LCMSR_BENCH_OUT`) so CI can track the overhead trajectory across PRs:
//!
//! * **inert vs untraced** — the gated ratio.  `untraced` runs the workload
//!   with requests that never mention tracing; `inert` runs identical
//!   requests with tracing explicitly requested *off*.  Both must take the
//!   same code path, so the ratio pins two things at once: a `.trace(false)`
//!   request costs the same as never asking, and the measurement itself is
//!   stable enough for the gate to mean anything.
//! * **inert span ns/op** — a direct microbenchmark of the disabled
//!   collector's `start`/`end` pair, the exact call solver hot loops make
//!   when tracing is off.  This is the measurement an A/B over the public
//!   API cannot give (instrumentation is compiled into both sides): if a
//!   future change puts work in front of the disabled check, this number —
//!   single-digit nanoseconds today — is where it shows up first.
//! * **enabled vs untraced** — reported (not gated) so the cost of *asking*
//!   for a trace is tracked across PRs; active tracing is sampled 1-in-N in
//!   production and may legitimately cost a few percent.
//!
//! Knobs: `LCMSR_SCALE` (default `tiny`), `LCMSR_TRACE_QUERIES` (default
//! 32), `LCMSR_TRACE_ROUNDS` (best-of rounds, default 5).  With
//! `LCMSR_BENCH_STRICT` set the run fails when the inert/untraced ratio
//! exceeds `LCMSR_BENCH_MAX_TRACE_RATIO` (default 1.05) or the inert span
//! pair exceeds `LCMSR_BENCH_MAX_INERT_NS` (default 100 ns); each gate
//! re-measures once to derisk noisy neighbours.

use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use lcmsr_core::trace::TraceCollector;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`rounds` wall time for one full pass over the workload, with the
/// trace flag applied to every request.  `trace: None` builds the request
/// without ever mentioning tracing — the untraced baseline.
fn measure_pass(
    engine: &LcmsrEngine<'_>,
    queries: &[LcmsrQuery],
    algorithm: &Algorithm,
    trace: Option<bool>,
    rounds: usize,
) -> f64 {
    best_secs(rounds, || {
        for query in queries {
            let mut request = QueryRequest::new(query, algorithm.clone());
            if let Some(flag) = trace {
                request = request.trace(flag);
            }
            let outcome = engine.execute(&request).expect("workload run");
            black_box(outcome.regions.len());
        }
    })
}

/// Nanoseconds per disabled `start`/`end` pair — the per-instrumentation-
/// point cost every solver hot loop pays when tracing is off.
fn inert_span_ns_per_op() -> f64 {
    let mut collector = TraceCollector::disabled();
    const OPS: u64 = 4_000_000;
    // Warm the branch predictor before timing.
    for _ in 0..10_000 {
        let id = collector.start("warmup");
        collector.end(id);
    }
    let start = Instant::now();
    for _ in 0..OPS {
        let id = black_box(collector.start("bench"));
        collector.end(id);
    }
    start.elapsed().as_nanos() as f64 / OPS as f64
}

fn main() {
    let scale = scale_from_env();
    let num_queries = env_usize("LCMSR_TRACE_QUERIES", 32).max(1);
    let rounds = env_usize("LCMSR_TRACE_ROUNDS", 5).max(1);
    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let max_ratio = env_f64("LCMSR_BENCH_MAX_TRACE_RATIO", 1.05);
    let max_inert_ns = env_f64("LCMSR_BENCH_MAX_INERT_NS", 100.0);

    let dataset = ny_dataset(scale);
    let params = dataset.default_query_params(2024);
    let queries = make_workload(
        &dataset,
        num_queries,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        2024,
    );
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let alpha = default_tgen_alpha(&dataset, &queries);
    let tgen = Algorithm::Tgen(TgenParams { alpha });

    // Warmup: populate grid/arena caches so neither side pays first-touch
    // costs, and sanity-check that an enabled run really produces a trace.
    let warm = engine
        .execute(&QueryRequest::new(&queries[0], tgen.clone()).trace(true))
        .expect("warmup run");
    let warm_trace = warm.trace.expect("enabled run must carry a trace");
    warm_trace.validate().expect("well-formed warmup trace");

    // The strict gate re-measures once before failing: on shared CI runners
    // a noisy neighbour can inflate a single measurement window.  Both sides
    // are re-measured — a stale baseline is as misleading as a noisy
    // candidate.
    let mut untraced_secs = 0.0;
    let mut inert_secs = 0.0;
    for attempt in 0..2 {
        untraced_secs = measure_pass(&engine, &queries, &tgen, None, rounds);
        inert_secs = measure_pass(&engine, &queries, &tgen, Some(false), rounds);
        if !strict || inert_secs / untraced_secs.max(1e-12) <= max_ratio {
            break;
        }
        if attempt == 0 {
            eprintln!(
                "  inert ratio {:.3}x above the {max_ratio:.2}x ceiling; re-measuring once",
                inert_secs / untraced_secs.max(1e-12)
            );
        }
    }
    let enabled_secs = measure_pass(&engine, &queries, &tgen, Some(true), rounds);

    let mut inert_ns = 0.0;
    for attempt in 0..2 {
        inert_ns = inert_span_ns_per_op();
        if !strict || inert_ns <= max_inert_ns {
            break;
        }
        if attempt == 0 {
            eprintln!(
                "  inert span pair {inert_ns:.1} ns above the {max_inert_ns:.0} ns ceiling; re-measuring once"
            );
        }
    }

    let inert_ratio = inert_secs / untraced_secs.max(1e-12);
    let enabled_ratio = enabled_secs / untraced_secs.max(1e-12);
    println!("trace_overhead (scale {scale:?}, {num_queries} queries, best of {rounds})");
    println!("  untraced pass   : {:>10.1} µs", untraced_secs * 1e6);
    println!(
        "  inert pass      : {:>10.1} µs  ({inert_ratio:.3}x untraced)",
        inert_secs * 1e6
    );
    println!(
        "  enabled pass    : {:>10.1} µs  ({enabled_ratio:.3}x untraced, {} spans/query)",
        enabled_secs * 1e6,
        warm_trace.spans.len()
    );
    println!("  inert span pair : {inert_ns:>10.2} ns/op");

    if strict {
        assert!(
            inert_ratio <= max_ratio,
            "inert-tracing solve {inert_ratio:.3}x exceeds the {max_ratio:.2}x ceiling"
        );
        assert!(
            inert_ns <= max_inert_ns,
            "inert span pair {inert_ns:.1} ns exceeds the {max_inert_ns:.0} ns ceiling"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_trace.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"scale\": \"{scale:?}\",\n  \"queries\": {num_queries},\n  \"rounds\": {rounds},\n  \"untraced_pass_us\": {:.1},\n  \"inert_pass_us\": {:.1},\n  \"enabled_pass_us\": {:.1},\n  \"inert_ratio\": {inert_ratio:.4},\n  \"enabled_ratio\": {enabled_ratio:.4},\n  \"inert_span_ns_per_op\": {inert_ns:.2},\n  \"spans_per_traced_query\": {},\n  \"max_trace_ratio_gate\": {max_ratio:.2},\n  \"max_inert_ns_gate\": {max_inert_ns:.0}\n}}\n",
        untraced_secs * 1e6,
        inert_secs * 1e6,
        enabled_secs * 1e6,
        warm_trace.spans.len(),
    );
    std::fs::write(&out_path, json).expect("write BENCH_trace.json");
    println!("  wrote {out_path}");
}
