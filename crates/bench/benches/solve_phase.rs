//! Solve-phase benchmark: the TGEN edge-combine loop — the hot path PR 3's
//! `TupleArena` refactor and PR 5's budget-pruned flat tuple arrays target.
//!
//! Like `batch_throughput` this is a plain harness emitting a
//! machine-readable `BENCH_solve.json` (path overridable via
//! `LCMSR_BENCH_OUT`) that CI archives to track the combine-loop perf
//! trajectory across PRs.  It measures, over a prepared query-graph workload:
//!
//! * **solve reused** — `run_tgen` with one warm arena, epoch-cleared between
//!   queries (the steady state every pooled workspace reaches),
//! * **solve fresh** — `run_tgen` with a brand-new arena per query (the cost
//!   a one-shot caller pays before any capacity has grown),
//! * **solve baseline** — `run_tgen_baseline`, the PR 3/4 combine loop
//!   (`BTreeMap` arrays, every pair materialised then feasibility-checked)
//!   with a warm arena: the apples-to-apples predecessor the frontier loop
//!   must beat,
//! * combine-loop effectiveness: pairs budget-pruned without materialisation,
//!   array sizes (which must never exceed the baseline's), and arena
//!   activity.
//!
//! Knobs: `LCMSR_SCALE` (dataset size, default `tiny`), `LCMSR_SOLVE_QUERIES`
//! (default 32), `LCMSR_SOLVE_ROUNDS` (default 3).  With `LCMSR_BENCH_STRICT`
//! set the run fails when warm-arena solving is slower than
//! `LCMSR_BENCH_MIN_SOLVE_SPEEDUP` (default 1.0) times the fresh-arena path,
//! or when the combine loop is slower than `LCMSR_BENCH_MIN_COMBINE_SPEEDUP`
//! (default 1.0) times the baseline loop; both re-measure once to derisk
//! noisy neighbours.  Results must always be bit-identical across all three
//! paths, and the per-node array footprint must never exceed the baseline's
//! — the dominance/size gate CI holds the line with.

use lcmsr_bench::*;
use lcmsr_core::arena::TupleArena;
use lcmsr_core::prelude::*;
use lcmsr_core::tgen::{run_tgen, run_tgen_baseline};

/// Fingerprint of one solve outcome: exact measures of the best tuple plus
/// its global node ids, enough to detect any divergence bit for bit.
fn fingerprint(
    graph: &QueryGraph,
    arena: &TupleArena,
    outcome: &lcmsr_core::tgen::TgenOutcome,
) -> (u64, u64, u64, Vec<u64>, usize) {
    match &outcome.best {
        None => (0, 0, 0, Vec::new(), outcome.top_tuples.len()),
        Some(t) => (
            t.scaled,
            t.weight.to_bits(),
            t.length.to_bits(),
            t.nodes(arena)
                .iter()
                .map(|&v| graph.global_node(v).0 as u64)
                .collect(),
            outcome.top_tuples.len(),
        ),
    }
}

fn main() {
    let scale = scale_from_env();
    let num_queries = env_usize("LCMSR_SOLVE_QUERIES", 32).max(1);
    let rounds = env_usize("LCMSR_SOLVE_ROUNDS", 3).max(1);

    let dataset = ny_dataset(scale);
    let params = dataset.default_query_params(2024);
    let queries = make_workload(
        &dataset,
        num_queries,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        2024,
    );
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let alpha = default_tgen_alpha(&dataset, &queries);
    let tgen = TgenParams { alpha };

    // Prepare every query graph once; this bench times the solve phase only.
    let graphs: Vec<_> = queries
        .iter()
        .map(|q| engine.prepare(q, alpha).expect("prepare"))
        .collect();

    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let min_speedup = env_f64("LCMSR_BENCH_MIN_SOLVE_SPEEDUP", 1.0);
    let min_combine_speedup = env_f64("LCMSR_BENCH_MIN_COMBINE_SPEEDUP", 1.0);

    // Warm one arena to its high-water capacity, collect the reference
    // fingerprints plus frontier/arena activity for the steady state.
    let mut warm = TupleArena::new();
    let mut reference = Vec::new();
    let mut tuples_total = 0u64;
    let mut pruned_total = 0u64;
    let mut frontier_total = 0u64;
    let mut frontier_peak = 0u64;
    let stats_before = warm.stats();
    for g in &graphs {
        warm.reset();
        let outcome = run_tgen(
            g,
            &mut warm,
            &tgen,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .expect("tgen");
        tuples_total += outcome.tuples_generated;
        pruned_total += outcome.pruned_pairs;
        frontier_total += outcome.frontier_tuples;
        frontier_peak = frontier_peak.max(outcome.frontier_peak);
        reference.push(fingerprint(g, &warm, &outcome));
    }
    let stats_after = warm.stats();
    let allocs_per_query = (stats_after.allocs - stats_before.allocs) as f64 / graphs.len() as f64;
    let recycled = (stats_after.free_list_hits - stats_before.free_list_hits)
        + (stats_after.top_rollbacks - stats_before.top_rollbacks);
    let recycled_per_query = recycled as f64 / graphs.len() as f64;
    let slab_kib = warm.storage_capacity() as f64 * 4.0 / 1024.0;

    // The PR 3/4 baseline loop on the same workload: results must be
    // bit-identical, and the flat per-scaled arrays must never hold more
    // tuples than the BTreeMap arrays did (they hold exactly as many; the
    // frontier arrays inside `findOptTree` hold fewer) — this is the
    // "array-size counter" gate CI tracks.
    let mut baseline_arena = TupleArena::new();
    let mut baseline_tuples_total = 0u64;
    let mut baseline_array_total = 0u64;
    let mut baseline_identical = true;
    for (g, expect) in graphs.iter().zip(&reference) {
        baseline_arena.reset();
        let outcome = run_tgen_baseline(g, &mut baseline_arena, &tgen).expect("tgen baseline");
        baseline_tuples_total += outcome.tuples_generated;
        baseline_array_total += outcome.frontier_tuples;
        if &fingerprint(g, &baseline_arena, &outcome) != expect {
            baseline_identical = false;
        }
    }

    // The strict gates re-measure once before failing: on shared CI runners a
    // noisy neighbour can depress a single measurement window.
    let mut reused_secs = 0.0;
    let mut fresh_secs = 0.0;
    let mut baseline_secs = 0.0;
    let mut speedup = 0.0;
    let mut combine_speedup = 0.0;
    for attempt in 0..2 {
        reused_secs = best_secs(rounds, || {
            for g in &graphs {
                warm.reset();
                let _ = run_tgen(
                    g,
                    &mut warm,
                    &tgen,
                    &CancelToken::none(),
                    &mut TraceCollector::disabled(),
                )
                .expect("tgen");
            }
        }) / graphs.len() as f64;
        fresh_secs = best_secs(rounds, || {
            for g in &graphs {
                let mut arena = TupleArena::new();
                let _ = run_tgen(
                    g,
                    &mut arena,
                    &tgen,
                    &CancelToken::none(),
                    &mut TraceCollector::disabled(),
                )
                .expect("tgen");
            }
        }) / graphs.len() as f64;
        baseline_secs = best_secs(rounds, || {
            for g in &graphs {
                baseline_arena.reset();
                let _ = run_tgen_baseline(g, &mut baseline_arena, &tgen).expect("tgen baseline");
            }
        }) / graphs.len() as f64;
        speedup = fresh_secs / reused_secs.max(1e-12);
        combine_speedup = baseline_secs / reused_secs.max(1e-12);
        if !strict || (speedup >= min_speedup && combine_speedup >= min_combine_speedup) {
            break;
        }
        if attempt == 0 {
            eprintln!(
                "  speedups {speedup:.2}x / {combine_speedup:.2}x below targets \
                 {min_speedup:.2}x / {min_combine_speedup:.2}x; re-measuring once"
            );
        }
    }

    // Fresh arenas must produce bit-identical outcomes to the warm arena.
    let mut identical = true;
    for (g, expect) in graphs.iter().zip(&reference) {
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            g,
            &mut arena,
            &tgen,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .expect("tgen");
        if &fingerprint(g, &arena, &outcome) != expect {
            identical = false;
        }
    }

    let tuples_per_query = tuples_total as f64 / graphs.len() as f64;
    let pruned_per_query = pruned_total as f64 / graphs.len() as f64;
    let frontier_per_query = frontier_total as f64 / graphs.len() as f64;
    let baseline_array_per_query = baseline_array_total as f64 / graphs.len() as f64;
    let baseline_tuples_per_query = baseline_tuples_total as f64 / graphs.len() as f64;
    let tuples_per_sec = tuples_per_query / reused_secs.max(1e-12);
    println!(
        "solve_phase (scale {scale:?}, {} queries, TGEN α {alpha:.1})",
        graphs.len()
    );
    println!("  solve reused    : {:>10.1} µs/query", reused_secs * 1e6);
    println!(
        "  solve fresh     : {:>10.1} µs/query  ({speedup:.2}x)",
        fresh_secs * 1e6
    );
    println!(
        "  solve baseline  : {:>10.1} µs/query  ({combine_speedup:.2}x, PR 3/4 loop)",
        baseline_secs * 1e6
    );
    println!(
        "  combine loop    : {tuples_per_query:>10.0} materialised + {pruned_per_query:>8.0} pruned pairs/query (baseline materialised {baseline_tuples_per_query:.0})"
    );
    println!(
        "  arrays          : {frontier_per_query:>10.0} tuples/query resident (baseline {baseline_array_per_query:.0}), peak {frontier_peak}"
    );
    println!(
        "  arena           : {allocs_per_query:.0} blocks/query, {recycled_per_query:.0} recycled/query, slab {slab_kib:.1} KiB"
    );
    println!("  results identical: {identical} (baseline: {baseline_identical})");

    assert!(
        identical,
        "fresh-arena results must be identical to warm-arena output"
    );
    assert!(
        baseline_identical,
        "frontier combine loop must produce bit-identical results to the PR 3/4 baseline"
    );
    assert!(
        frontier_total <= baseline_array_total,
        "per-node arrays must never hold more tuples than the pre-frontier baseline \
         ({frontier_total} > {baseline_array_total})"
    );
    if strict {
        assert!(
            speedup >= min_speedup,
            "warm-arena solve speedup {speedup:.2}x below the {min_speedup:.2}x floor"
        );
        assert!(
            combine_speedup >= min_combine_speedup,
            "combine-loop speedup {combine_speedup:.2}x over the PR 3/4 baseline is below \
             the {min_combine_speedup:.2}x floor"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_solve.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"solve_phase\",\n  \"scale\": \"{scale:?}\",\n  \"queries\": {},\n  \"tgen_alpha\": {alpha:.3},\n  \"solve_reused_us_per_query\": {:.3},\n  \"solve_fresh_us_per_query\": {:.3},\n  \"solve_baseline_us_per_query\": {:.3},\n  \"reuse_speedup\": {speedup:.4},\n  \"combine_speedup\": {combine_speedup:.4},\n  \"tuples_per_query\": {tuples_per_query:.1},\n  \"pruned_pairs_per_query\": {pruned_per_query:.1},\n  \"baseline_tuples_per_query\": {baseline_tuples_per_query:.1},\n  \"frontier_tuples_per_query\": {frontier_per_query:.1},\n  \"baseline_array_tuples_per_query\": {baseline_array_per_query:.1},\n  \"frontier_peak\": {frontier_peak},\n  \"tuples_per_sec\": {tuples_per_sec:.0},\n  \"arena_blocks_per_query\": {allocs_per_query:.1},\n  \"arena_recycled_per_query\": {recycled_per_query:.1},\n  \"arena_slab_kib\": {slab_kib:.1},\n  \"identical_results\": {identical},\n  \"baseline_identical\": {baseline_identical}\n}}\n",
        graphs.len(),
        reused_secs * 1e6,
        fresh_secs * 1e6,
        baseline_secs * 1e6,
    );
    std::fs::write(&out_path, json).expect("write BENCH_solve.json");
    println!("  wrote {out_path}");
}
