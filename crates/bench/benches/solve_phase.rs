//! Solve-phase benchmark: the TGEN edge-combine loop over arena-backed
//! region tuples — the hot path PR 3's `TupleArena` refactor targets.
//!
//! Like `batch_throughput` this is a plain harness emitting a
//! machine-readable `BENCH_solve.json` (path overridable via
//! `LCMSR_BENCH_OUT`) that CI archives to track the combine-loop perf
//! trajectory across PRs.  It measures, over a prepared query-graph workload:
//!
//! * **solve reused** — `run_tgen` with one warm arena, epoch-cleared between
//!   queries (the steady state every pooled workspace reaches),
//! * **solve fresh** — `run_tgen` with a brand-new arena per query (the cost
//!   a one-shot caller pays before any capacity has grown),
//! * arena activity: blocks allocated, free-list hits and top-of-slab
//!   rollbacks per query — how many combine products were recycled instead of
//!   becoming garbage.
//!
//! Knobs: `LCMSR_SCALE` (dataset size, default `tiny`), `LCMSR_SOLVE_QUERIES`
//! (default 32), `LCMSR_SOLVE_ROUNDS` (default 3).  With `LCMSR_BENCH_STRICT`
//! set the run fails when warm-arena solving is slower than
//! `LCMSR_BENCH_MIN_SOLVE_SPEEDUP` (default 1.0) times the fresh-arena path,
//! re-measuring once to derisk noisy neighbours; results must always be
//! bit-identical between the two paths.

use lcmsr_bench::*;
use lcmsr_core::arena::TupleArena;
use lcmsr_core::prelude::*;
use lcmsr_core::tgen::run_tgen;

/// Fingerprint of one solve outcome: exact measures of the best tuple plus
/// its global node ids, enough to detect any divergence bit for bit.
fn fingerprint(
    graph: &lcmsr_core::query_graph::QueryGraph,
    arena: &TupleArena,
    outcome: &lcmsr_core::tgen::TgenOutcome,
) -> (u64, u64, u64, Vec<u64>, usize) {
    match &outcome.best {
        None => (0, 0, 0, Vec::new(), outcome.top_tuples.len()),
        Some(t) => (
            t.scaled,
            t.weight.to_bits(),
            t.length.to_bits(),
            t.nodes(arena)
                .iter()
                .map(|&v| graph.global_node(v).0 as u64)
                .collect(),
            outcome.top_tuples.len(),
        ),
    }
}

fn main() {
    let scale = scale_from_env();
    let num_queries = env_usize("LCMSR_SOLVE_QUERIES", 32).max(1);
    let rounds = env_usize("LCMSR_SOLVE_ROUNDS", 3).max(1);

    let dataset = ny_dataset(scale);
    let params = dataset.default_query_params(2024);
    let queries = make_workload(
        &dataset,
        num_queries,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        2024,
    );
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let alpha = default_tgen_alpha(&dataset, &queries);
    let tgen = lcmsr_core::tgen::TgenParams { alpha };

    // Prepare every query graph once; this bench times the solve phase only.
    let graphs: Vec<_> = queries
        .iter()
        .map(|q| engine.prepare(q, alpha).expect("prepare"))
        .collect();

    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let min_speedup: f64 = std::env::var("LCMSR_BENCH_MIN_SOLVE_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    // Warm one arena to its high-water capacity, and collect the reference
    // fingerprints plus arena activity for the steady state.
    let mut warm = TupleArena::new();
    let mut reference = Vec::new();
    let mut tuples_total = 0u64;
    let stats_before = warm.stats();
    for g in &graphs {
        warm.reset();
        let outcome = run_tgen(g, &mut warm, &tgen).expect("tgen");
        tuples_total += outcome.tuples_generated;
        reference.push(fingerprint(g, &warm, &outcome));
    }
    let stats_after = warm.stats();
    let allocs_per_query = (stats_after.allocs - stats_before.allocs) as f64 / graphs.len() as f64;
    let recycled = (stats_after.free_list_hits - stats_before.free_list_hits)
        + (stats_after.top_rollbacks - stats_before.top_rollbacks);
    let recycled_per_query = recycled as f64 / graphs.len() as f64;
    let slab_kib = warm.storage_capacity() as f64 * 4.0 / 1024.0;

    // The strict gate re-measures once before failing: on shared CI runners a
    // noisy neighbour can depress a single measurement window.
    let mut reused_secs = 0.0;
    let mut fresh_secs = 0.0;
    let mut speedup = 0.0;
    for attempt in 0..2 {
        reused_secs = best_secs(rounds, || {
            for g in &graphs {
                warm.reset();
                let _ = run_tgen(g, &mut warm, &tgen).expect("tgen");
            }
        }) / graphs.len() as f64;
        fresh_secs = best_secs(rounds, || {
            for g in &graphs {
                let mut arena = TupleArena::new();
                let _ = run_tgen(g, &mut arena, &tgen).expect("tgen");
            }
        }) / graphs.len() as f64;
        speedup = fresh_secs / reused_secs.max(1e-12);
        if !strict || speedup >= min_speedup {
            break;
        }
        if attempt == 0 {
            eprintln!(
                "  solve speedup {speedup:.2}x below {min_speedup:.2}x target; re-measuring once"
            );
        }
    }

    // Fresh arenas must produce bit-identical outcomes to the warm arena.
    let mut identical = true;
    for (g, expect) in graphs.iter().zip(&reference) {
        let mut arena = TupleArena::new();
        let outcome = run_tgen(g, &mut arena, &tgen).expect("tgen");
        if &fingerprint(g, &arena, &outcome) != expect {
            identical = false;
        }
    }

    let tuples_per_query = tuples_total as f64 / graphs.len() as f64;
    let tuples_per_sec = tuples_per_query / reused_secs.max(1e-12);
    println!(
        "solve_phase (scale {scale:?}, {} queries, TGEN α {alpha:.1})",
        graphs.len()
    );
    println!("  solve reused    : {:>10.1} µs/query", reused_secs * 1e6);
    println!(
        "  solve fresh     : {:>10.1} µs/query  ({speedup:.2}x)",
        fresh_secs * 1e6
    );
    println!(
        "  combine loop    : {:>10.0} tuples/query, {:.2} M tuples/s",
        tuples_per_query,
        tuples_per_sec / 1e6
    );
    println!(
        "  arena           : {allocs_per_query:.0} blocks/query, {recycled_per_query:.0} recycled/query, slab {slab_kib:.1} KiB"
    );
    println!("  results identical: {identical}");

    assert!(
        identical,
        "fresh-arena results must be identical to warm-arena output"
    );
    if strict {
        assert!(
            speedup >= min_speedup,
            "warm-arena solve speedup {speedup:.2}x below the {min_speedup:.2}x floor"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_solve.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"solve_phase\",\n  \"scale\": \"{scale:?}\",\n  \"queries\": {},\n  \"tgen_alpha\": {alpha:.3},\n  \"solve_reused_us_per_query\": {:.3},\n  \"solve_fresh_us_per_query\": {:.3},\n  \"reuse_speedup\": {speedup:.4},\n  \"tuples_per_query\": {tuples_per_query:.1},\n  \"tuples_per_sec\": {tuples_per_sec:.0},\n  \"arena_blocks_per_query\": {allocs_per_query:.1},\n  \"arena_recycled_per_query\": {recycled_per_query:.1},\n  \"arena_slab_kib\": {slab_kib:.1},\n  \"identical_results\": {identical}\n}}\n",
        graphs.len(),
        reused_secs * 1e6,
        fresh_secs * 1e6,
    );
    std::fs::write(&out_path, json).expect("write BENCH_solve.json");
    println!("  wrote {out_path}");
}
