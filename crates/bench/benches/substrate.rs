//! Substrate micro-benchmarks: the indexing layer the paper's Section 3
//! describes (grid + per-cell inverted lists on a paged B⁺-tree) and the
//! object→node weight computation that precedes every query.
//!
//! These do not correspond to a single figure; they quantify the fixed
//! per-query indexing cost that all three algorithms share.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_geotext::btree::BPlusTree;
use std::hint::black_box;

fn bench_node_weights(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let queries = default_workload(&dataset, 999);
    let query = queries.first().cloned().expect("workload is non-empty");

    let mut group = c.benchmark_group("substrate_node_weights");
    group.sample_size(20);
    for keywords in [1usize, 3, 5] {
        let kws: Vec<String> = query
            .keywords
            .iter()
            .cycle()
            .take(keywords)
            .cloned()
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(keywords), &kws, |b, kws| {
            b.iter(|| {
                black_box(
                    dataset
                        .collection
                        .node_weights_for_keywords(kws, &query.region_of_interest),
                )
            });
        });
    }
    group.finish();
}

fn bench_btree_inserts_and_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_bptree");
    group.sample_size(20);
    for n in [1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut t: BPlusTree<u32, u64> = BPlusTree::new();
                for i in 0..n {
                    t.insert(i.wrapping_mul(2654435761) % n, i as u64);
                }
                black_box(t.len())
            });
        });
        let mut tree: BPlusTree<u32, u64> = BPlusTree::new();
        for i in 0..n {
            tree.insert(i, i as u64);
        }
        group.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in (0..n).step_by(7) {
                    acc += *tree.get(&i).unwrap();
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_node_weights, bench_btree_inserts_and_lookups);
criterion_main!(benches);
