//! Criterion bench for Figures 21–22: top-k query runtime for k ∈ {1, 3, 5}.
//!
//! Paper shape: runtime grows only mildly with k for every algorithm; Greedy
//! remains the fastest and TGEN stays below APP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn bench_topk(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = default_workload(&dataset, 2122);
    let query = queries.first().cloned().expect("workload is non-empty");
    let alpha = default_tgen_alpha(&dataset, &queries);
    let algorithms = [
        ("APP", Algorithm::App(AppParams::default())),
        ("TGEN", Algorithm::Tgen(TgenParams { alpha })),
        ("Greedy", Algorithm::Greedy(GreedyParams::default())),
    ];

    let mut group = c.benchmark_group("fig21_topk_ny");
    group.sample_size(10);
    for k in [1usize, 3, 5] {
        for (name, algorithm) in &algorithms {
            group.bench_with_input(BenchmarkId::new(*name, k), &k, |b, &k| {
                b.iter(|| black_box(run_query_topk(&engine, &query, algorithm, k).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
