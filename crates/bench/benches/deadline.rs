//! Deadline-overrun benchmark: how promptly solvers honour anytime deadlines.
//!
//! PR 6 threads a cooperative cancellation token through every solver so a
//! `QueryRequest` with a deadline returns its best-so-far region instead of
//! running to completion.  Cooperation is only worth something if the poll
//! points are dense enough — a solver that checks the clock every few hundred
//! microseconds overruns a 1 ms deadline by a useless margin.  This plain
//! harness measures that margin directly and emits a machine-readable
//! `BENCH_deadline.json` (path overridable via `LCMSR_BENCH_OUT`) so CI can
//! track the overrun trajectory across PRs.
//!
//! Two workloads, both run many times with a tight deadline:
//!
//! * **Exact** — the 2^n enumeration on a deliberately worst-case 20-node
//!   grid (the solver's `node_limit`); without a deadline this runs for tens
//!   of milliseconds, so a 1 ms deadline *must* interrupt it mid-enumeration,
//! * **TGEN** — the edge-combine loop on the NY-like synthetic workload,
//!   where the deadline races realistic solve times.
//!
//! For every trial the **overrun ratio** is `observed latency / deadline`; a
//! run that finishes (or yields) inside the deadline scores below 1.0.  The
//! report includes the p99 ratio per workload plus the fraction of runs that
//! returned `partial`.
//!
//! Knobs: `LCMSR_SCALE` (TGEN dataset size, default `tiny`),
//! `LCMSR_DEADLINE_TRIALS` (default 64), `LCMSR_DEADLINE_MS` (default 1).
//! With `LCMSR_BENCH_STRICT` set the run fails when the deadlined Exact p99
//! overrun ratio exceeds `LCMSR_BENCH_MAX_OVERRUN` (default 1.25 — a
//! deadline may be exceeded by at most 25%); it re-measures once to derisk
//! noisy neighbours.

use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use lcmsr_geotext::prelude::*;
use lcmsr_roadnet::prelude::*;
use std::time::{Duration, Instant};

/// A 5×4 grid city — exactly the Exact solver's 20-node limit, so the mask
/// enumeration is as deep as the solver ever allows (2^20 subsets).
fn grid_city() -> (RoadNetwork, Vec<GeoTextObject>) {
    let (w, h, spacing) = (5usize, 4usize, 100.0);
    let mut builder = GraphBuilder::new();
    let mut nodes = Vec::new();
    for y in 0..h {
        for x in 0..w {
            nodes.push(builder.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                builder.add_edge(nodes[i], nodes[i + 1], spacing).unwrap();
            }
            if y + 1 < h {
                builder.add_edge(nodes[i], nodes[i + w], spacing).unwrap();
            }
        }
    }
    let network = builder.build().unwrap();
    // A restaurant near every node keeps every subset relevant, which makes
    // the enumeration the worst case for the budget pruner.
    let objects = (0..(w * h))
        .map(|i| {
            let x = (i % w) as f64 * spacing;
            let y = (i / w) as f64 * spacing;
            GeoTextObject::from_keywords(i as u64, Point::new(x + 5.0, y + 5.0), ["restaurant"])
        })
        .collect();
    (network, objects)
}

/// Runs `trials` deadlined executions and returns (sorted overrun ratios,
/// fraction partial).
fn measure_overruns(
    engine: &LcmsrEngine<'_>,
    query: &LcmsrQuery,
    algorithm: &Algorithm,
    deadline: Duration,
    trials: usize,
) -> (Vec<f64>, f64) {
    let mut ratios = Vec::with_capacity(trials);
    let mut partial = 0usize;
    for _ in 0..trials {
        let request =
            QueryRequest::new(query, algorithm.clone()).deadline(Deadline::after(deadline));
        let start = Instant::now();
        let outcome = engine.execute(&request).expect("deadlined run");
        let elapsed = start.elapsed();
        ratios.push(elapsed.as_secs_f64() / deadline.as_secs_f64().max(1e-12));
        if outcome.is_partial() {
            partial += 1;
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (ratios, partial as f64 / trials.max(1) as f64)
}

/// p99 of an ascending-sorted sample (nearest-rank).
fn p99(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let scale = scale_from_env();
    let trials = env_usize("LCMSR_DEADLINE_TRIALS", 64).max(1);
    let deadline_ms = env_usize("LCMSR_DEADLINE_MS", 1).max(1);
    let deadline = Duration::from_millis(deadline_ms as u64);
    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let max_overrun = env_f64("LCMSR_BENCH_MAX_OVERRUN", 1.25);

    // Exact workload: the worst-case grid at the solver's node limit.
    let (grid_network, grid_objects) = grid_city();
    let grid_collection = ObjectCollection::build(&grid_network, grid_objects, 100.0).unwrap();
    let grid_engine = LcmsrEngine::new(&grid_network, &grid_collection);
    let grid_rect = grid_network.bounding_rect().unwrap().expanded(10.0);
    let exact_query = LcmsrQuery::new(["restaurant"], 600.0, grid_rect).unwrap();

    // Sanity: the undeadlined Exact run must be slower than the deadline,
    // otherwise the gate measures nothing.
    let free_run = Instant::now();
    let full = grid_engine
        .execute(&QueryRequest::new(&exact_query, Algorithm::Exact))
        .expect("exact full run");
    let exact_full_secs = free_run.elapsed().as_secs_f64();
    assert!(!full.is_partial(), "undeadlined run must be complete");

    // TGEN workload: the NY-like synthetic dataset.
    let dataset = ny_dataset(scale);
    let params = dataset.default_query_params(2024);
    let queries = make_workload(
        &dataset,
        1,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        2024,
    );
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let alpha = default_tgen_alpha(&dataset, &queries);
    let tgen = Algorithm::Tgen(TgenParams { alpha });

    // The strict gate re-measures once before failing: on shared CI runners a
    // noisy neighbour can inflate a single measurement window.
    let mut exact_ratios = Vec::new();
    let mut exact_partial = 0.0;
    for attempt in 0..2 {
        let (ratios, partial) = measure_overruns(
            &grid_engine,
            &exact_query,
            &Algorithm::Exact,
            deadline,
            trials,
        );
        exact_ratios = ratios;
        exact_partial = partial;
        if !strict || p99(&exact_ratios) <= max_overrun {
            break;
        }
        if attempt == 0 {
            eprintln!(
                "  exact p99 overrun {:.2}x above the {max_overrun:.2}x ceiling; re-measuring once",
                p99(&exact_ratios)
            );
        }
    }
    let (tgen_ratios, tgen_partial) =
        measure_overruns(&engine, &queries[0], &tgen, deadline, trials);

    let exact_p99 = p99(&exact_ratios);
    let tgen_p99 = p99(&tgen_ratios);
    println!("deadline (scale {scale:?}, {trials} trials, deadline {deadline_ms} ms)");
    println!(
        "  exact free run  : {:>10.1} µs  (deadline is {:.1}x shorter)",
        exact_full_secs * 1e6,
        exact_full_secs / deadline.as_secs_f64().max(1e-12)
    );
    println!(
        "  exact deadlined : p99 overrun {exact_p99:.3}x, {:.0}% partial",
        exact_partial * 100.0
    );
    println!(
        "  tgen deadlined  : p99 overrun {tgen_p99:.3}x, {:.0}% partial",
        tgen_partial * 100.0
    );

    if strict {
        assert!(
            exact_p99 <= max_overrun,
            "deadlined Exact p99 overrun {exact_p99:.2}x exceeds the {max_overrun:.2}x ceiling"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_deadline.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"deadline\",\n  \"scale\": \"{scale:?}\",\n  \"trials\": {trials},\n  \"deadline_ms\": {deadline_ms},\n  \"exact_full_run_us\": {:.1},\n  \"exact_p99_overrun\": {exact_p99:.4},\n  \"exact_partial_fraction\": {exact_partial:.4},\n  \"tgen_p99_overrun\": {tgen_p99:.4},\n  \"tgen_partial_fraction\": {tgen_partial:.4},\n  \"max_overrun_gate\": {max_overrun:.2}\n}}\n",
        exact_full_secs * 1e6,
    );
    std::fs::write(&out_path, json).expect("write BENCH_deadline.json");
    println!("  wrote {out_path}");
}
