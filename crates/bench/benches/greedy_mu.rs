//! Criterion bench for Figures 13–14: Greedy runtime as µ varies.
//!
//! Paper shape: runtime is essentially flat in µ (the parameter only changes
//! which frontier node is picked, not how much work each step does) and two to
//! three orders of magnitude below APP/TGEN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn bench_greedy_mu(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = default_workload(&dataset, 1314);
    let query = queries.first().cloned().expect("workload is non-empty");

    let mut group = c.benchmark_group("fig13_greedy_vs_mu");
    group.sample_size(20);
    for mu in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(mu), &mu, |b, &mu| {
            let algorithm = Algorithm::Greedy(GreedyParams { mu });
            b.iter(|| black_box(run_query(&engine, &query, &algorithm).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy_mu);
criterion_main!(benches);
