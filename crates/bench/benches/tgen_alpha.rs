//! Criterion bench for Figures 9–10: TGEN runtime as its scaling parameter α varies.
//!
//! Paper shape: runtime falls sharply as α grows because each node's explored
//! tuple array shrinks (the bound is `N_max·⌊|V_Q|/α⌋`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn bench_tgen_alpha(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = default_workload(&dataset, 910);
    let query = queries.first().cloned().expect("workload is non-empty");
    let base = default_tgen_alpha(&dataset, &queries);

    let mut group = c.benchmark_group("fig9_tgen_vs_alpha");
    group.sample_size(10);
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let alpha = (base * factor).max(0.05);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{factor}x")),
            &alpha,
            |b, &alpha| {
                let algorithm = Algorithm::Tgen(TgenParams { alpha });
                b.iter(|| black_box(run_query(&engine, &query, &algorithm).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tgen_alpha);
criterion_main!(benches);
