//! Criterion bench for Figure 16: runtime of APP, TGEN and Greedy on the
//! USANW-like dataset while varying the query arguments.
//!
//! Paper shape: same trends as Figure 15 (runtime grows with every argument;
//! Greedy ≪ TGEN < APP) on the sparser, larger-extent network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn bench_usanw_vary_keywords(c: &mut Criterion) {
    let dataset = usanw_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let defaults = dataset.default_query_params(165);
    let mut group = c.benchmark_group("fig16a_usanw_vs_keywords");
    group.sample_size(10);
    for keywords in [1usize, 3, 5] {
        let queries = make_workload(
            &dataset,
            1,
            keywords,
            defaults.area_km2,
            defaults.delta_km,
            250 + keywords as u64,
        );
        let Some(query) = queries.first().cloned() else {
            continue;
        };
        let alpha = default_tgen_alpha(&dataset, &queries);
        let algorithms = [
            (
                "APP",
                Algorithm::App(AppParams {
                    alpha: 0.1,
                    ..AppParams::default()
                }),
            ),
            ("TGEN", Algorithm::Tgen(TgenParams { alpha })),
            ("Greedy", Algorithm::Greedy(GreedyParams { mu: 0.4 })),
        ];
        for (name, algorithm) in algorithms {
            group.bench_with_input(
                BenchmarkId::new(name, keywords),
                &algorithm,
                |b, algorithm| b.iter(|| black_box(run_query(&engine, &query, algorithm).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_usanw_vary_delta(c: &mut Criterion) {
    let dataset = usanw_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let defaults = dataset.default_query_params(166);
    let mut group = c.benchmark_group("fig16c_usanw_vs_delta");
    group.sample_size(10);
    for factor in [0.85f64, 1.0, 1.15] {
        let delta = defaults.delta_km * factor;
        let queries = make_workload(
            &dataset,
            1,
            defaults.num_keywords,
            defaults.area_km2,
            delta,
            261,
        );
        let Some(query) = queries.first().cloned() else {
            continue;
        };
        let alpha = default_tgen_alpha(&dataset, &queries);
        let algorithms = [
            (
                "APP",
                Algorithm::App(AppParams {
                    alpha: 0.1,
                    ..AppParams::default()
                }),
            ),
            ("TGEN", Algorithm::Tgen(TgenParams { alpha })),
            ("Greedy", Algorithm::Greedy(GreedyParams { mu: 0.4 })),
        ];
        for (name, algorithm) in algorithms {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{factor}dx")),
                &algorithm,
                |b, algorithm| b.iter(|| black_box(run_query(&engine, &query, algorithm).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_usanw_vary_keywords, bench_usanw_vary_delta);
criterion_main!(benches);
