//! Ablation bench: APP with the GW/Garg-style k-MST oracle versus the
//! density-greedy oracle (DESIGN.md §6 "k-MST oracle" design choice).
//!
//! Expected shape: the density oracle is noticeably faster; the GW oracle
//! produces candidate trees closer to the paper's algorithm and (as the
//! `experiments` binary reports) slightly better regions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::kmst::KMstSolverKind;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn bench_kmst_ablation(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = default_workload(&dataset, 4242);
    let query = queries.first().cloned().expect("workload is non-empty");

    let mut group = c.benchmark_group("ablation_kmst_oracle");
    group.sample_size(10);
    for (name, kind) in [
        ("garg-gw", KMstSolverKind::Garg),
        ("density", KMstSolverKind::Density),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            let algorithm = Algorithm::App(AppParams {
                solver: kind,
                ..AppParams::default()
            });
            b.iter(|| black_box(run_query(&engine, &query, &algorithm).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmst_ablation);
criterion_main!(benches);
