//! Criterion bench for Figure 15: runtime of APP, TGEN and Greedy on the
//! NY-like dataset while varying the query arguments (number of keywords, ∆, Λ).
//!
//! Paper shape: all runtimes grow with each argument; Greedy ≪ TGEN < APP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn algorithms(
    dataset: &lcmsr_datagen::Dataset,
    queries: &[LcmsrQuery],
) -> Vec<(&'static str, Algorithm)> {
    let alpha = default_tgen_alpha(dataset, queries);
    vec![
        ("APP", Algorithm::App(AppParams::default())),
        ("TGEN", Algorithm::Tgen(TgenParams { alpha })),
        ("Greedy", Algorithm::Greedy(GreedyParams::default())),
    ]
}

fn bench_vary_keywords(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let defaults = dataset.default_query_params(15);
    let mut group = c.benchmark_group("fig15a_ny_vs_keywords");
    group.sample_size(10);
    for keywords in [1usize, 3, 5] {
        let queries = make_workload(
            &dataset,
            1,
            keywords,
            defaults.area_km2,
            defaults.delta_km,
            150 + keywords as u64,
        );
        let Some(query) = queries.first().cloned() else {
            continue;
        };
        for (name, algorithm) in algorithms(&dataset, &queries) {
            group.bench_with_input(
                BenchmarkId::new(name, keywords),
                &algorithm,
                |b, algorithm| b.iter(|| black_box(run_query(&engine, &query, algorithm).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_vary_delta(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let defaults = dataset.default_query_params(16);
    let mut group = c.benchmark_group("fig15c_ny_vs_delta");
    group.sample_size(10);
    for factor in [0.8f64, 1.0, 1.2] {
        let delta = defaults.delta_km * factor;
        let queries = make_workload(
            &dataset,
            1,
            defaults.num_keywords,
            defaults.area_km2,
            delta,
            161,
        );
        let Some(query) = queries.first().cloned() else {
            continue;
        };
        for (name, algorithm) in algorithms(&dataset, &queries) {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{factor}dx")),
                &algorithm,
                |b, algorithm| b.iter(|| black_box(run_query(&engine, &query, algorithm).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_vary_area(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let defaults = dataset.default_query_params(17);
    let mut group = c.benchmark_group("fig15e_ny_vs_area");
    group.sample_size(10);
    for factor in [0.75f64, 1.0, 1.25] {
        let area = defaults.area_km2 * factor;
        let queries = make_workload(
            &dataset,
            1,
            defaults.num_keywords,
            area,
            defaults.delta_km,
            171,
        );
        let Some(query) = queries.first().cloned() else {
            continue;
        };
        for (name, algorithm) in algorithms(&dataset, &queries) {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{factor}ax")),
                &algorithm,
                |b, algorithm| b.iter(|| black_box(run_query(&engine, &query, algorithm).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vary_keywords,
    bench_vary_delta,
    bench_vary_area
);
criterion_main!(benches);
