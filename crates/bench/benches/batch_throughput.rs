//! Batch-throughput benchmark: sequential `run` loop vs `run_batch` over
//! scoped workers, plus the fresh-vs-reused `prepare` cost — the two wins the
//! CSR query graph and the reusable `QueryWorkspace` were built for.
//!
//! Unlike the criterion benches this is a plain harness so it can emit a
//! machine-readable `BENCH_batch.json` (path overridable via
//! `LCMSR_BENCH_OUT`) that CI archives to track the perf trajectory across
//! PRs.  Knobs: `LCMSR_SCALE` (dataset size, default `tiny`),
//! `LCMSR_BATCH_QUERIES` (default 32), `LCMSR_BATCH_WORKERS` (default 4).
//!
//! The ≥2× batched-vs-sequential target assumes ≥4 available CPUs; on
//! smaller machines the benchmark still reports the measured ratio (workspace
//! reuse alone keeps it ≥1 in practice) but only fails loudly when
//! `LCMSR_BENCH_STRICT` is set.

use lcmsr_bench::*;
use lcmsr_core::prelude::*;

fn main() {
    let scale = scale_from_env();
    let num_queries = env_usize("LCMSR_BATCH_QUERIES", 32).max(1);
    let workers = env_usize("LCMSR_BATCH_WORKERS", 4).max(1);
    let rounds = env_usize("LCMSR_BATCH_ROUNDS", 3).max(1);
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let dataset = ny_dataset(scale);
    let params = dataset.default_query_params(4242);
    let queries = make_workload(
        &dataset,
        num_queries,
        params.num_keywords,
        params.area_km2,
        params.delta_km,
        4242,
    );
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let alpha = default_tgen_alpha(&dataset, &queries);
    let algorithm = Algorithm::Tgen(TgenParams { alpha });

    // -- prepare: fresh workspace per query vs one reused workspace ---------
    let prep_fresh = best_secs(rounds, || {
        for q in &queries {
            let _ = engine.prepare(q, alpha).expect("prepare");
        }
    }) / queries.len() as f64;
    let mut workspace = QueryWorkspace::new();
    // Warm the workspace buffers to their high-water mark before timing.
    for q in &queries {
        let g = engine
            .prepare_with(&mut workspace, q, alpha)
            .expect("prepare");
        engine.release(&mut workspace, g);
    }
    let prep_reused = best_secs(rounds, || {
        for q in &queries {
            let g = engine
                .prepare_with(&mut workspace, q, alpha)
                .expect("prepare");
            engine.release(&mut workspace, g);
        }
    }) / queries.len() as f64;
    let prep_speedup = prep_fresh / prep_reused.max(1e-12);

    // -- sequential run loop vs batched execution ---------------------------
    // The strict speedup gate re-measures once before failing: on shared CI
    // runners a noisy neighbour can depress a single measurement window.
    let strict = std::env::var("LCMSR_BENCH_STRICT").is_ok();
    let min_speedup = env_f64("LCMSR_BENCH_MIN_SPEEDUP", 2.0);
    let mut sequential_regions = Vec::new();
    let mut batched_regions = Vec::new();
    let mut seq_secs = 0.0;
    let mut batch_secs = 0.0;
    let mut speedup = 0.0;
    for attempt in 0..2 {
        seq_secs = best_secs(rounds, || {
            sequential_regions = queries
                .iter()
                .map(|q| run_query(&engine, q, &algorithm).expect("run").region)
                .collect();
        });
        batch_secs = best_secs(rounds, || {
            batched_regions = run_query_batch(&engine, &queries, &algorithm, workers)
                .expect("run_batch")
                .into_iter()
                .map(|r| r.region)
                .collect();
        });
        speedup = seq_secs / batch_secs.max(1e-12);
        if !strict || speedup >= min_speedup || cpus < workers {
            break;
        }
        if attempt == 0 {
            eprintln!("  speedup {speedup:.2}x below {min_speedup:.1}x target; re-measuring once");
        }
    }
    let identical = sequential_regions == batched_regions;
    let seq_qps = queries.len() as f64 / seq_secs;
    let batch_qps = queries.len() as f64 / batch_secs;

    println!(
        "batch_throughput (scale {scale:?}, {} queries, {workers} workers, {cpus} CPUs)",
        queries.len()
    );
    println!("  prepare fresh   : {:>10.1} µs/query", prep_fresh * 1e6);
    println!(
        "  prepare reused  : {:>10.1} µs/query  ({prep_speedup:.2}x)",
        prep_reused * 1e6
    );
    println!(
        "  sequential run  : {:>10.2} ms total  ({seq_qps:.1} q/s)",
        seq_secs * 1e3
    );
    println!(
        "  run_batch({workers})    : {:>10.2} ms total  ({batch_qps:.1} q/s)",
        batch_secs * 1e3
    );
    println!("  batch speedup   : {speedup:.2}x   results identical: {identical}");

    assert!(
        identical,
        "batched results must be identical to sequential output"
    );
    if strict && cpus >= workers {
        assert!(
            speedup >= min_speedup,
            "batch speedup {speedup:.2}x below the {min_speedup:.1}x target with {cpus} CPUs"
        );
    }

    let out_path =
        std::env::var("LCMSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"batch_throughput\",\n  \"scale\": \"{scale:?}\",\n  \"queries\": {},\n  \"workers\": {workers},\n  \"cpus\": {cpus},\n  \"prepare_fresh_us_per_query\": {:.3},\n  \"prepare_reused_us_per_query\": {:.3},\n  \"prepare_speedup\": {prep_speedup:.4},\n  \"sequential_ms\": {:.3},\n  \"batch_ms\": {:.3},\n  \"sequential_qps\": {seq_qps:.2},\n  \"batch_qps\": {batch_qps:.2},\n  \"batch_speedup\": {speedup:.4},\n  \"identical_results\": {identical}\n}}\n",
        queries.len(),
        prep_fresh * 1e6,
        prep_reused * 1e6,
        seq_secs * 1e3,
        batch_secs * 1e3,
    );
    std::fs::write(&out_path, json).expect("write BENCH_batch.json");
    println!("  wrote {out_path}");
}
