//! Criterion bench for Figures 11–12: APP runtime as the binary-search
//! parameter β varies.
//!
//! Paper shape: larger β terminates the quota binary search earlier, so
//! runtime (and accuracy) decrease as β grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn bench_app_beta(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = default_workload(&dataset, 1112);
    let query = queries.first().cloned().expect("workload is non-empty");

    let mut group = c.benchmark_group("fig11_app_vs_beta");
    group.sample_size(10);
    for beta in [0.001, 0.01, 0.1, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, &beta| {
            let algorithm = Algorithm::App(AppParams {
                beta,
                ..AppParams::default()
            });
            b.iter(|| black_box(run_query(&engine, &query, &algorithm).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_app_beta);
criterion_main!(benches);
