//! Criterion bench for Figures 7–8: APP runtime as the scaling parameter α varies.
//!
//! Paper shape: runtime decreases as α grows (coarser scaling → fewer tuples),
//! while result quality stays nearly flat (checked by the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcmsr_bench::*;
use lcmsr_core::prelude::*;
use std::hint::black_box;

fn bench_app_alpha(c: &mut Criterion) {
    let dataset = ny_dataset(scale_from_env());
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = default_workload(&dataset, 78);
    let query = queries.first().cloned().expect("workload is non-empty");

    let mut group = c.benchmark_group("fig7_app_vs_alpha");
    group.sample_size(10);
    for alpha in [0.01, 0.1, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let algorithm = Algorithm::App(AppParams {
                alpha,
                ..AppParams::default()
            });
            b.iter(|| black_box(run_query(&engine, &query, &algorithm).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_app_alpha);
criterion_main!(benches);
