//! Accuracy / efficiency comparison over a query workload — a miniature of the
//! paper's Section 7.2.2: run APP, TGEN and Greedy over a generated workload
//! and report average runtime and the relative accuracy ratio against TGEN
//! (the paper's measure, since exact answers are infeasible at scale).
//!
//! Run with: `cargo run --release --example compare_algorithms`

use lcmsr::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = Dataset::build(DatasetConfig::tiny(11));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    println!("network : {}", dataset.network.stats());

    // A workload of queries following the paper's generation procedure.
    let mut params = dataset.default_query_params(23);
    params.num_queries = 12;
    params.num_keywords = 3;
    let queries = dataset.queries(&params);
    println!(
        "workload: {} queries, {} keywords each, Λ = {:.1} km², ∆ = {:.1} km\n",
        queries.len(),
        params.num_keywords,
        params.area_km2,
        params.delta_km
    );

    let algorithms = [
        ("APP", Algorithm::App(AppParams::default())),
        ("TGEN", Algorithm::Tgen(TgenParams { alpha: 5.0 })),
        ("Greedy", Algorithm::Greedy(GreedyParams::default())),
    ];

    // Collect weights per algorithm per query to compute the relative ratio.
    let mut weights: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    let mut runtimes: Vec<f64> = vec![0.0; algorithms.len()];
    for query in &queries {
        let lcmsr_query = LcmsrQuery::new(query.keywords.clone(), query.delta, query.rect)
            .expect("generated queries are valid");
        for (i, (_, algorithm)) in algorithms.iter().enumerate() {
            let started = Instant::now();
            let result = engine
                .execute(&QueryRequest::new(&lcmsr_query, algorithm.clone()))
                .expect("query runs")
                .into_single();
            runtimes[i] += started.elapsed().as_secs_f64() * 1_000.0;
            weights[i].push(result.region.map_or(0.0, |r| r.weight));
        }
    }

    // Relative ratio vs. TGEN (index 1), averaged over queries — the paper's metric.
    println!(
        "{:<8} {:>14} {:>20}",
        "algo", "avg time (ms)", "ratio vs TGEN (%)"
    );
    for (i, (name, _)) in algorithms.iter().enumerate() {
        let mut ratio_sum = 0.0;
        let mut counted = 0usize;
        for (candidate, reference) in weights[i].iter().zip(&weights[1]) {
            if *reference > 0.0 {
                ratio_sum += (candidate / reference).min(1.5) * 100.0;
                counted += 1;
            }
        }
        let avg_ratio = if counted > 0 {
            ratio_sum / counted as f64
        } else {
            0.0
        };
        println!(
            "{:<8} {:>14.2} {:>20.1}",
            name,
            runtimes[i] / queries.len() as f64,
            avg_ratio
        );
    }
    println!("\nExpected shape (paper §7.2.2): TGEN is the accuracy reference (100%),");
    println!("APP stays above ~90%, Greedy falls well below; Greedy is the fastest.");
}
