//! LCMSR vs MaxRS (Section 7.5 / Figure 20): compare the network-aware LCMSR
//! region against the classical fixed-rectangle maximum-range-sum region.
//!
//! The paper's human annotators preferred LCMSR on 90 % of queries because
//! MaxRS rectangles cut across blocks and their objects need not be connected
//! by streets.  This example reproduces the comparison procedure with an
//! automatic quality proxy (see DESIGN.md §4): the MaxRS result's objects are
//! connected with a minimum spanning tree in the road-network metric, that
//! length becomes the LCMSR `∆`, and the two regions are compared on relevance
//! weight and street connectivity.
//!
//! Run with: `cargo run --release --example maxrs_comparison`

use lcmsr::prelude::*;

fn main() {
    let dataset = Dataset::build(DatasetConfig::tiny(99));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    println!("network : {}", dataset.network.stats());

    let mut params = dataset.default_query_params(55);
    params.num_queries = 10;
    params.num_keywords = 2;
    let queries = dataset.queries(&params);

    let mut lcmsr_preferred = 0usize;
    let mut compared = 0usize;
    println!(
        "\n{:>3} {:>28} {:>10} {:>10} {:>12} {:>9}",
        "q#", "keywords", "MaxRS w", "LCMSR w", "MaxRS conn.", "winner"
    );
    for (i, generated) in queries.iter().enumerate() {
        let query =
            LcmsrQuery::new(generated.keywords.clone(), generated.delta, generated.rect).unwrap();
        // The paper uses a 500 m × 500 m MaxRS rectangle.
        let Ok(Some(maxrs)) = engine.run_maxrs(&query, 500.0, 500.0) else {
            continue;
        };
        let delta = maxrs.connecting_length.unwrap_or(query.delta).max(250.0);
        let lcmsr_query =
            LcmsrQuery::new(generated.keywords.clone(), delta, generated.rect).unwrap();
        let request = QueryRequest::new(&lcmsr_query, Algorithm::Tgen(TgenParams { alpha: 5.0 }));
        let lcmsr_weight = engine
            .execute(&request)
            .expect("query runs")
            .into_single()
            .region
            .map_or(0.0, |r| r.weight);
        let lcmsr_better = !maxrs.connected_in_network || lcmsr_weight >= maxrs.weight * 0.98;
        if lcmsr_better {
            lcmsr_preferred += 1;
        }
        compared += 1;
        println!(
            "{:>3} {:>28} {:>10.4} {:>10.4} {:>12} {:>9}",
            i + 1,
            generated.keywords.join(" "),
            maxrs.weight,
            lcmsr_weight,
            maxrs.connected_in_network,
            if lcmsr_better { "LCMSR" } else { "MaxRS" }
        );
    }
    if compared > 0 {
        println!(
            "\nLCMSR preferred on {}/{} comparable queries ({:.0}%); the paper's annotators preferred it on 90%.",
            lcmsr_preferred,
            compared,
            100.0 * lcmsr_preferred as f64 / compared as f64
        );
    }
}
