//! The paper's motivating scenario (Figures 1 and 17–19): a user standing in a
//! dense downtown wants a compact, walkable region with many cafes and
//! restaurants.  We run the same query with TGEN, APP and Greedy and print the
//! regions' contents so their shapes and qualities can be compared — the
//! analogue of the qualitative Bronx example in Section 7.4.
//!
//! Run with: `cargo run --release --example explore_region`

use lcmsr::prelude::*;

fn main() {
    // A denser NY-like city than the quickstart (small scale keeps this fast).
    let dataset = Dataset::build(DatasetConfig::ny(NetworkScale::Small, 7));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    println!("network : {}", dataset.network.stats());

    // Focus the search on a "downtown" window around one of the planted
    // restaurant/cafe clusters so the region of interest is realistic.
    let center = dataset
        .clusters
        .iter()
        .find(|c| {
            let term = CATEGORIES[c.category];
            term == "restaurant" || term == "cafe" || term == "coffee"
        })
        .map_or_else(
            || dataset.network.bounding_rect().unwrap().center(),
            |c| c.point,
        );
    let roi = Rect::centered_square(center, 3_000.0); // a 3 km × 3 km downtown
    let query = LcmsrQuery::new(["cafe", "restaurant"], 2_000.0, roi).unwrap();
    println!(
        "query   : {:?}, ∆ = {} m, Λ = {:.1} km² around ({:.0}, {:.0})",
        query.keywords,
        query.delta,
        roi.area_km2(),
        center.x,
        center.y
    );

    let algorithms = vec![
        Algorithm::Tgen(TgenParams { alpha: 25.0 }),
        Algorithm::App(AppParams::default()),
        Algorithm::Greedy(GreedyParams::default()),
    ];
    for algorithm in &algorithms {
        let result = engine
            .execute(&QueryRequest::new(&query, algorithm.clone()))
            .expect("query runs")
            .into_single();
        println!("\n=== {} ===", algorithm.name());
        let Some(region) = result.region else {
            println!("no relevant region found");
            continue;
        };
        // Count the actual points of interest inside the region and the
        // categories they carry — the paper reports "N objects with weight W".
        let mut poi_count = 0usize;
        let mut category_hits: std::collections::BTreeMap<&str, usize> = Default::default();
        for &node in &region.nodes {
            for &obj in dataset.collection.objects_at(node) {
                let object = dataset.collection.object(obj).unwrap();
                let relevant = query.keywords.iter().any(|k| object.contains_term(k));
                if relevant {
                    poi_count += 1;
                    for k in &query.keywords {
                        if object.contains_term(k) {
                            *category_hits.entry(k.as_str()).or_default() += 1;
                        }
                    }
                }
            }
        }
        println!(
            "region  : {} road nodes, {} segments, {:.0} m of streets",
            region.node_count(),
            region.edges.len(),
            region.length
        );
        println!(
            "content : {} relevant PoIs, total relevance weight {:.3}",
            poi_count, region.weight
        );
        for (term, count) in &category_hits {
            println!("          {count} × \"{term}\"");
        }
        println!("stats   : {}", result.stats);
    }
}
