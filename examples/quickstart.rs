//! Quickstart: build a tiny synthetic city, index its points of interest, and
//! answer one LCMSR query with all three algorithms.
//!
//! Run with: `cargo run --release --example quickstart`

use lcmsr::prelude::*;

fn main() {
    // 1. Build a small synthetic data set (a Manhattan-style grid with
    //    clustered points of interest) — stands in for the paper's New York
    //    data; see DESIGN.md §4.
    let dataset = Dataset::build(DatasetConfig::tiny(42));
    println!("network : {}", dataset.network.stats());
    println!(
        "objects : {} indexed, {} distinct keywords",
        dataset.collection.len(),
        dataset.collection.keyword_count()
    );

    // 2. Formulate an LCMSR query: keywords, a walking budget Q.∆, and the
    //    region of interest Q.Λ (here: the whole city).
    let roi = dataset.network.bounding_rect().unwrap();
    let query =
        LcmsrQuery::new(["restaurant", "cafe"], 1_200.0, roi).expect("query arguments are valid");
    println!(
        "\nquery   : keywords {:?}, ∆ = {} m, Λ = {:.1} km²",
        query.keywords,
        query.delta,
        query.region_of_interest.area_km2()
    );

    // 3. Answer it with each algorithm and compare.
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let algorithms = vec![
        Algorithm::App(AppParams::default()),
        Algorithm::Tgen(TgenParams { alpha: 10.0 }),
        Algorithm::Greedy(GreedyParams::default()),
    ];
    println!(
        "\n{:<8} {:>10} {:>12} {:>8} {:>12}",
        "algo", "weight", "length (m)", "PoIs", "time (ms)"
    );
    for algorithm in &algorithms {
        let result = engine
            .execute(&QueryRequest::new(&query, algorithm.clone()))
            .expect("query runs")
            .into_single();
        match &result.region {
            Some(region) => println!(
                "{:<8} {:>10.4} {:>12.1} {:>8} {:>12.2}",
                algorithm.name(),
                region.weight,
                region.length,
                region.node_count(),
                result.stats.elapsed_ms()
            ),
            None => println!("{:<8} (no relevant region found)", algorithm.name()),
        }
    }
}
