//! Top-k LCMSR exploration (Section 6.2): return several alternative regions so
//! the user can choose between neighbourhoods.
//!
//! Run with: `cargo run --release --example topk_regions`

use lcmsr::prelude::*;

fn main() {
    let dataset = Dataset::build(DatasetConfig::tiny(3));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);

    let roi = dataset.network.bounding_rect().unwrap();
    let query = LcmsrQuery::new(["bar", "pub", "nightclub"], 1_000.0, roi).unwrap();
    println!(
        "query: {:?}, ∆ = {} m, Λ = {:.1} km²\n",
        query.keywords,
        query.delta,
        roi.area_km2()
    );

    let k = 3;
    for algorithm in [
        Algorithm::Tgen(TgenParams { alpha: 5.0 }),
        Algorithm::App(AppParams::default()),
        Algorithm::Greedy(GreedyParams::default()),
    ] {
        let result = engine.run_topk(&query, &algorithm, k).expect("query runs");
        println!(
            "=== {} (top-{k}) — {:.2} ms ===",
            algorithm.name(),
            result.stats.elapsed_ms()
        );
        if result.regions.is_empty() {
            println!("  no relevant region found\n");
            continue;
        }
        for (rank, region) in result.regions.iter().enumerate() {
            println!(
                "  #{} weight {:.4}, length {:.0} m, {} road nodes",
                rank + 1,
                region.weight,
                region.length,
                region.node_count()
            );
        }
        println!();
    }
}
