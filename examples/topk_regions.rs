//! Top-k LCMSR exploration (Section 6.2): return several alternative regions so
//! the user can choose between neighbourhoods.
//!
//! Run with: `cargo run --release --example topk_regions`

use lcmsr::prelude::*;

fn main() {
    let dataset = Dataset::build(DatasetConfig::tiny(3));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);

    let roi = dataset.network.bounding_rect().unwrap();
    let query = LcmsrQuery::new(["bar", "pub", "nightclub"], 1_000.0, roi).unwrap();
    println!(
        "query: {:?}, ∆ = {} m, Λ = {:.1} km²\n",
        query.keywords,
        query.delta,
        roi.area_km2()
    );

    let k = 3;
    for algorithm in [
        Algorithm::Tgen(TgenParams { alpha: 5.0 }),
        Algorithm::App(AppParams::default()),
        Algorithm::Greedy(GreedyParams::default()),
    ] {
        let result = engine
            .execute(&QueryRequest::new(&query, algorithm.clone()).top_k(k))
            .expect("query runs")
            .into_topk();
        println!(
            "=== {} (top-{k}) — {:.2} ms ===",
            algorithm.name(),
            result.stats.elapsed_ms()
        );
        if result.regions.is_empty() {
            println!("  no relevant region found\n");
            continue;
        }
        for (rank, region) in result.regions.iter().enumerate() {
            println!(
                "  #{} weight {:.4}, length {:.0} m, {} road nodes",
                rank + 1,
                region.weight,
                region.length,
                region.node_count()
            );
        }
        println!();
    }

    // TGEN's default α (400, tuned for the paper's city-scale graphs) is far
    // coarser than this tiny network: every scaled weight floors to zero.
    // Top-k must still return regions and its #1 must agree with the
    // single-region query.
    let coarse = Algorithm::Tgen(TgenParams::default());
    let single = engine
        .execute(&QueryRequest::new(&query, coarse.clone()))
        .expect("query runs")
        .into_single()
        .region;
    let top = engine
        .execute(&QueryRequest::new(&query, coarse.clone()).top_k(k))
        .expect("query runs")
        .into_topk();
    println!(
        "=== TGEN with default α = {} (coarse scaling) ===",
        TgenParams::default().alpha
    );
    match (&single, top.regions.first()) {
        (Some(s), Some(t)) => println!(
            "  single best weight {:.4} | top-1 weight {:.4} ({} alternatives returned)",
            s.weight,
            t.weight,
            top.regions.len()
        ),
        _ => println!(
            "  single: {:?}, top-k: {} regions — INCONSISTENT",
            single.is_some(),
            top.regions.len()
        ),
    }
}
