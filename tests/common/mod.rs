//! Shared helpers for the integration suite: thin wrappers over the unified
//! [`QueryRequest`] front door that keep the call shapes the pre-PR-6
//! per-method engine API offered (`run`, `run_topk`, `run_with`,
//! `run_batch_with`), so the suites stay focused on algorithm behaviour
//! rather than request plumbing.
#![allow(dead_code)]

use lcmsr::core::engine::{
    Algorithm, LcmsrEngine, QueryOutcome, QueryRequest, QueryResult, QueryWorkspace, TopKResult,
};
use lcmsr::core::{LcmsrQuery, Result};

/// Answers a single query: `engine.run` over the unified API.
pub fn run1(
    engine: &LcmsrEngine<'_>,
    query: &LcmsrQuery,
    algorithm: &Algorithm,
) -> Result<QueryResult> {
    engine
        .execute(&QueryRequest::new(query, algorithm.clone()))
        .map(QueryOutcome::into_single)
}

/// Single query with a caller-owned workspace: `engine.run_with`.
pub fn run1_with(
    engine: &LcmsrEngine<'_>,
    workspace: &mut QueryWorkspace,
    query: &LcmsrQuery,
    algorithm: &Algorithm,
) -> Result<QueryResult> {
    engine
        .execute_with(workspace, &QueryRequest::new(query, algorithm.clone()))
        .map(QueryOutcome::into_single)
}

/// Top-k query: `engine.run_topk`.
pub fn runk(
    engine: &LcmsrEngine<'_>,
    query: &LcmsrQuery,
    algorithm: &Algorithm,
    k: usize,
) -> Result<TopKResult> {
    engine
        .execute(&QueryRequest::new(query, algorithm.clone()).top_k(k))
        .map(QueryOutcome::into_topk)
}

/// Batched top-k execution on `workers` threads: `engine.run_topk_batch_with`.
pub fn batchk_with(
    engine: &LcmsrEngine<'_>,
    queries: &[LcmsrQuery],
    algorithm: &Algorithm,
    k: usize,
    workers: usize,
) -> Result<Vec<TopKResult>> {
    let requests: Vec<QueryRequest<'_>> = queries
        .iter()
        .map(|q| QueryRequest::new(q, algorithm.clone()).top_k(k))
        .collect();
    Ok(engine
        .execute_batch_with(&requests, workers)?
        .into_iter()
        .map(QueryOutcome::into_topk)
        .collect())
}

/// Batched execution on `workers` threads: `engine.run_batch_with`.
pub fn batch1_with(
    engine: &LcmsrEngine<'_>,
    queries: &[LcmsrQuery],
    algorithm: &Algorithm,
    workers: usize,
) -> Result<Vec<QueryResult>> {
    let requests: Vec<QueryRequest<'_>> = queries
        .iter()
        .map(|q| QueryRequest::new(q, algorithm.clone()))
        .collect();
    Ok(engine
        .execute_batch_with(&requests, workers)?
        .into_iter()
        .map(QueryOutcome::into_single)
        .collect())
}
