//! Integration tests for the top-k extension (Section 6.2) and the MaxRS
//! comparison procedure (Section 7.5 / Figure 20).

use lcmsr::prelude::*;

mod common;
use common::*;

fn dataset() -> Dataset {
    Dataset::build(DatasetConfig::tiny(41))
}

#[test]
fn topk_regions_are_feasible_distinct_and_ordered() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let roi = dataset.network.bounding_rect().unwrap();
    let query = LcmsrQuery::new(["restaurant", "cafe"], 900.0, roi).unwrap();
    for algorithm in [
        Algorithm::App(AppParams::default()),
        Algorithm::Tgen(TgenParams { alpha: 5.0 }),
        Algorithm::Greedy(GreedyParams::default()),
    ] {
        for k in [1usize, 3, 5] {
            let result = runk(&engine, &query, &algorithm, k).unwrap();
            assert!(result.regions.len() <= k);
            for region in &result.regions {
                assert!(region.length <= 900.0 + 1e-6, "{}", algorithm.name());
                assert!(region.weight > 0.0);
            }
            for pair in result.regions.windows(2) {
                assert!(
                    pair[0].weight + 1e-9 >= pair[1].weight,
                    "{}: top-k not ordered",
                    algorithm.name()
                );
                assert_ne!(pair[0].nodes, pair[1].nodes, "{}", algorithm.name());
            }
        }
    }
}

#[test]
fn top1_matches_the_single_region_query_for_tgen() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let roi = dataset.network.bounding_rect().unwrap();
    let query = LcmsrQuery::new(["bakery", "dessert"], 700.0, roi).unwrap();
    let algorithm = Algorithm::Tgen(TgenParams { alpha: 5.0 });
    let single = run1(&engine, &query, &algorithm).unwrap().region;
    let top = runk(&engine, &query, &algorithm, 1).unwrap().regions;
    match (single, top.first()) {
        (Some(s), Some(t)) => {
            assert!((s.weight - t.weight).abs() < 1e-9);
            assert_eq!(s.nodes, t.nodes);
        }
        (None, None) => {}
        (s, t) => panic!(
            "single {:?} vs top-1 {:?} disagree",
            s.is_some(),
            t.is_some()
        ),
    }
}

#[test]
fn topk_runtime_grows_mildly_with_k() {
    // Figures 21–22 show all algorithms slowing only slightly as k grows; here
    // we only check that k = 5 is not catastrophically slower than k = 1.
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let roi = dataset.network.bounding_rect().unwrap();
    let query = LcmsrQuery::new(["restaurant"], 900.0, roi).unwrap();
    let algorithm = Algorithm::Tgen(TgenParams { alpha: 5.0 });
    let t1 = runk(&engine, &query, &algorithm, 1).unwrap().stats.elapsed;
    let t5 = runk(&engine, &query, &algorithm, 5).unwrap().stats.elapsed;
    assert!(
        t5 < t1 * 20 + std::time::Duration::from_millis(50),
        "top-5 ({t5:?}) is unreasonably slower than top-1 ({t1:?})"
    );
}

#[test]
fn maxrs_baseline_and_section_75_comparison() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let roi = dataset.network.bounding_rect().unwrap();
    // Use a common category so the rectangle has something to cover.
    let query = LcmsrQuery::new(["restaurant"], 1_000.0, roi).unwrap();
    let maxrs = engine
        .run_maxrs(&query, 500.0, 500.0)
        .unwrap()
        .expect("the tiny dataset has restaurants");
    assert!(!maxrs.objects.is_empty());
    assert!(maxrs.weight > 0.0);
    assert_eq!(maxrs.objects.len(), maxrs.result.covered.len());
    // Every covered object really is inside the 500 m × 500 m rectangle.
    for &obj in &maxrs.objects {
        let o = dataset.collection.object(obj).unwrap();
        assert!((o.point.x - maxrs.result.center.x).abs() <= 250.0 + 1e-6);
        assert!((o.point.y - maxrs.result.center.y).abs() <= 250.0 + 1e-6);
    }

    // The Section 7.5 procedure: use the MaxRS region's connecting length as the
    // LCMSR ∆ and compare the regions.
    if let Some(connecting) = maxrs.connecting_length {
        let delta = connecting.max(200.0);
        let lcmsr_query = LcmsrQuery::new(["restaurant"], delta, roi).unwrap();
        let lcmsr = run1(
            &engine,
            &lcmsr_query,
            &Algorithm::Tgen(TgenParams { alpha: 5.0 }),
        )
        .unwrap()
        .region
        .expect("LCMSR region exists when MaxRS found objects");
        // The LCMSR region is connected by construction and network-aware; its
        // weight should be competitive with the rectangle's content.
        assert!(lcmsr.weight >= 0.5 * maxrs.weight);
        let view = RegionView::new(&dataset.network, roi);
        assert!(view.is_connected_region(&lcmsr.nodes, &lcmsr.edges));
    }
}

#[test]
fn maxrs_with_unmatched_keywords_returns_none() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let roi = dataset.network.bounding_rect().unwrap();
    let query = LcmsrQuery::new(["zeppelin-hangar"], 1_000.0, roi).unwrap();
    assert!(engine.run_maxrs(&query, 500.0, 500.0).unwrap().is_none());
}
