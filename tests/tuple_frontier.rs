//! Shadow-model property tests for the Pareto-frontier `TupleArray`.
//!
//! The model is the pre-frontier array (`NaiveTupleArray`: a `BTreeMap`
//! keeping the first-seen minimum-length tuple per scaled weight) followed by
//! a post-hoc cross-weight dominance filter (`pareto_filtered`).  Feeding any
//! insert sequence to both structures must agree on `len`, `get`, the best
//! tuple, and the full iteration order — including *which* tuple survives a
//! tie, which insertion order decides identically in both.
//!
//! Scaled weights and lengths are drawn from deliberately tiny domains so
//! that equal-scaled collisions, equal-length ties across scaled weights, and
//! multi-entry eviction runs all occur constantly.

use lcmsr::core::arena::TupleArena;
use lcmsr::core::region::RegionTuple;
use lcmsr::core::tuple_array::{NaiveTupleArray, TupleArray};
use proptest::prelude::*;

/// Lengths drawn from a small lattice so exact equality happens often.
fn length_of(idx: u64) -> f64 {
    idx as f64 * 0.5
}

fn assert_agrees(arena: &TupleArena, frontier: &TupleArray, naive: &NaiveTupleArray, step: usize) {
    let filtered = naive.pareto_filtered();
    assert_eq!(
        frontier.len(),
        filtered.len(),
        "step {step}: frontier holds {} entries, model {}",
        frontier.len(),
        filtered.len()
    );
    for (i, (got, want)) in frontier.iter().zip(&filtered).enumerate() {
        assert_eq!(got.scaled, want.scaled, "step {step}, position {i}");
        assert_eq!(
            got.length.to_bits(),
            want.length.to_bits(),
            "step {step}, position {i} (scaled {})",
            got.scaled
        );
        assert!(
            got.same_nodes(want, arena),
            "step {step}, position {i}: tie broken differently (scaled {}, nodes {:?} vs {:?})",
            got.scaled,
            got.nodes(arena),
            want.nodes(arena)
        );
    }
    // `get` agrees for every scaled weight in (and around) the domain:
    // present exactly when the model's filtered view retains that weight.
    for s in 0..16u64 {
        let want = filtered.iter().find(|t| t.scaled == s);
        match (frontier.get(s), want) {
            (None, None) => {}
            (Some(a), Some(b)) => assert!(a.same_nodes(b, arena), "step {step}: get({s})"),
            (a, b) => panic!(
                "step {step}: get({s}) disagrees (frontier {:?}, model {:?})",
                a.map(|t| t.scaled),
                b.map(|t| t.scaled)
            ),
        }
    }
    // The best tuple is the largest scaled weight on both sides.
    match (frontier.best(), filtered.last()) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.scaled, b.scaled, "step {step}: best");
            assert!(a.same_nodes(b, arena), "step {step}: best node set");
        }
        (a, b) => panic!("step {step}: best disagrees ({a:?} vs {b:?})"),
    }
}

proptest! {
    /// Random insert sequences over tiny (scaled, length) domains: the
    /// frontier must match the naive-map-plus-dominance-filter model after
    /// every single insert, not just at the end (eviction happens *during*
    /// the sequence, the filter afterwards — agreeing at every prefix proves
    /// eager eviction equals lazy filtering).
    #[test]
    fn frontier_matches_naive_model_under_random_inserts(
        inserts in collection::vec((0u64..12, 0u64..8), 1..80),
    ) {
        let mut arena = TupleArena::new();
        let mut frontier = TupleArray::new();
        let mut naive = NaiveTupleArray::new();
        for (step, &(scaled, len_idx)) in inserts.iter().enumerate() {
            let node = step as u32; // distinct node set per insert: ties are observable
            let tuple = RegionTuple::from_parts(
                &mut arena,
                length_of(len_idx),
                scaled as f64,
                scaled,
                &[node],
                &[],
            );
            frontier.insert_if_better(tuple);
            naive.insert_if_better(tuple);
            assert_agrees(&arena, &frontier, &naive, step);
        }
        // The frontier invariant proper: both keys strictly increase.
        let entries: Vec<_> = frontier.iter().copied().collect();
        for w in entries.windows(2) {
            prop_assert!(w[0].scaled < w[1].scaled);
            prop_assert!(w[0].length < w[1].length);
        }
        // Accounting: the reject counter matches an independent quadratic
        // replay, and every accepted insert is on the frontier or was evicted.
        prop_assert_eq!(frontier.dominated_rejects(), dominance_rejects(&inserts));
        let accepted = inserts.len() as u64 - frontier.dominated_rejects();
        prop_assert_eq!(
            frontier.len() as u64 + frontier.dominance_evictions(),
            accepted,
            "inserts = survivors + evictions + rejects"
        );
    }

    /// A frontier array never holds more tuples than the naive array fed the
    /// same inserts — the CI size gate in miniature.
    #[test]
    fn frontier_is_never_larger_than_the_naive_array(
        inserts in collection::vec((0u64..20, 0u64..10), 1..60),
    ) {
        let mut arena = TupleArena::new();
        let mut frontier = TupleArray::new();
        let mut naive = NaiveTupleArray::new();
        for (step, &(scaled, len_idx)) in inserts.iter().enumerate() {
            let tuple = RegionTuple::from_parts(
                &mut arena,
                length_of(len_idx),
                scaled as f64,
                scaled,
                &[step as u32],
                &[],
            );
            frontier.insert_if_better(tuple);
            naive.insert_if_better(tuple);
            prop_assert!(frontier.len() <= naive.len());
        }
    }
}

/// Independent quadratic replay of the dominance contract: a candidate is
/// rejected iff some live tuple has scaled ≥ and length ≤ (ties included);
/// an accepted candidate removes every live tuple it dominates.  No sorting,
/// no binary search — the obviously-correct mirror of `insert_if_better`.
fn dominance_rejects(inserts: &[(u64, u64)]) -> u64 {
    let mut live: Vec<(u64, f64)> = Vec::new();
    let mut rejects = 0u64;
    for &(scaled, len_idx) in inserts {
        let length = length_of(len_idx);
        if live.iter().any(|&(s, l)| s >= scaled && l <= length) {
            rejects += 1;
            continue;
        }
        live.retain(|&(s, l)| !(scaled >= s && length <= l));
        live.push((scaled, length));
    }
    rejects
}

/// Handwritten eviction edge cases the random generator may under-sample —
/// equal scaled weight, equal length, and evictions spanning several entries
/// at once — checked against the same model.
#[test]
fn eviction_edge_cases_match_the_model() {
    let sequences: &[&[(u64, u64)]] = &[
        // Equal scaled weight, equal length: first wins everywhere.
        &[(5, 4), (5, 4), (5, 4)],
        // Equal scaled weight, decreasing lengths: each replaces.
        &[(5, 6), (5, 4), (5, 2)],
        // Equal length across scaled weights: highest scaled survives alone.
        &[(3, 4), (7, 4), (5, 4)],
        // One insert evicts the entire array.
        &[(1, 1), (2, 2), (3, 3), (4, 4), (9, 0)],
        // Partial multi-entry eviction: middle run goes, flanks stay.
        &[(1, 0), (3, 2), (5, 3), (9, 7), (6, 1)],
        // Dominated candidate arrives after its dominator.
        &[(8, 2), (4, 2), (4, 3), (8, 3)],
        // Interleaved improvements and dominations.
        &[(2, 3), (6, 5), (2, 1), (6, 2), (4, 1), (4, 0), (7, 0)],
    ];
    for (si, seq) in sequences.iter().enumerate() {
        let mut arena = TupleArena::new();
        let mut frontier = TupleArray::new();
        let mut naive = NaiveTupleArray::new();
        for (step, &(scaled, len_idx)) in seq.iter().enumerate() {
            let tuple = RegionTuple::from_parts(
                &mut arena,
                length_of(len_idx),
                scaled as f64,
                scaled,
                &[(si * 100 + step) as u32],
                &[],
            );
            frontier.insert_if_better(tuple);
            naive.insert_if_better(tuple);
            assert_agrees(&arena, &frontier, &naive, step);
        }
    }
}
