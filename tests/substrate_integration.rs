//! Cross-crate substrate tests: DIMACS round trips of synthetic networks,
//! index-vs-direct scoring consistency, and query-graph construction on
//! generated data.

use lcmsr::geotext::vsm::QueryVector;
use lcmsr::prelude::*;
use lcmsr::roadnet::dimacs::{parse_dimacs, to_dimacs_strings, WeightUnit};

mod common;
use common::*;

#[test]
fn synthetic_network_round_trips_through_dimacs() {
    let network = ny_like(NetworkScale::Tiny, 13).unwrap();
    let (gr, co) = to_dimacs_strings(&network);
    let reloaded = parse_dimacs(&gr, &co, WeightUnit::Meters).unwrap();
    assert_eq!(reloaded.node_count(), network.node_count());
    assert_eq!(reloaded.edge_count(), network.edge_count());
    // Edge lengths survive up to the integer rounding of the DIMACS format.
    for e in network.edges().iter().take(200) {
        let l = reloaded.length(reloaded.edge_between(e.a, e.b).unwrap());
        assert!((l - e.length.round().max(1.0)).abs() < 1e-9);
    }
}

#[test]
fn grid_index_scoring_matches_direct_vsm_scoring() {
    let dataset = Dataset::build(DatasetConfig::tiny(19));
    let collection = &dataset.collection;
    let rect = dataset.network.bounding_rect().unwrap().expanded(100.0);
    let keywords = ["restaurant", "coffee", "bar"];
    let weights = collection.node_weights_for_keywords(&keywords, &rect);
    let query = QueryVector::new(collection.vocabulary(), &keywords);
    // Recompute each scored object's relevance directly from Equation 1.
    for (object_id, &score) in &weights.by_object {
        let object = collection.object(*object_id).unwrap();
        let direct = query.score_object(object);
        assert!(
            (direct - score).abs() < 1e-9,
            "object {object_id}: index {score} vs direct {direct}"
        );
    }
    // And every node weight is the sum of its objects' scores.
    for (&node, &w) in &weights.by_node {
        let sum: f64 = collection
            .objects_at(node)
            .iter()
            .filter_map(|o| weights.by_object.get(o))
            .sum();
        assert!((sum - w).abs() < 1e-9);
    }
}

#[test]
fn query_graph_respects_the_region_of_interest() {
    let dataset = Dataset::build(DatasetConfig::tiny(23));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let full = dataset.network.bounding_rect().unwrap();
    let half = Rect::new(full.min_x, full.min_y, full.center().x, full.max_y);
    let query = LcmsrQuery::new(["restaurant"], 800.0, half).unwrap();
    let graph = engine.prepare(&query, 0.5).unwrap();
    assert!(graph.node_count() < dataset.network.node_count());
    for v in graph.node_indices() {
        assert!(half.contains(&graph.point(v)));
    }
    // Scaled weights follow Lemma 5: no node exceeds ⌊|V_Q|/α⌋.
    let bound = graph.scaled_weight_lower_bound();
    for v in graph.node_indices() {
        assert!(graph.scaled_weight(v) <= bound);
    }
}

#[test]
fn generated_workloads_are_answerable() {
    let dataset = Dataset::build(DatasetConfig::tiny(29));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let mut params = dataset.default_query_params(3);
    params.num_queries = 6;
    params.num_keywords = 2;
    let queries = dataset.queries(&params);
    assert_eq!(queries.len(), 6);
    let mut answered = 0;
    for q in queries {
        let query = LcmsrQuery::new(q.keywords.clone(), q.delta, q.rect).unwrap();
        let result = run1(&engine, &query, &Algorithm::Greedy(GreedyParams::default())).unwrap();
        if result.region.is_some() {
            answered += 1;
        }
    }
    // The generator guarantees every query area contains relevant objects, so
    // the vast majority must be answerable (boundary effects may lose a couple).
    assert!(
        answered >= 4,
        "only {answered} of 6 queries produced regions"
    );
}

#[test]
fn object_ratings_are_available_for_alternative_scoring() {
    // Section 2 allows scoring by rating/popularity instead of text relevance;
    // the substrate must expose ratings for that use.
    let dataset = Dataset::build(DatasetConfig::tiny(31));
    let with_rating = dataset
        .collection
        .objects()
        .iter()
        .filter(|o| o.rating.is_some())
        .count();
    assert_eq!(with_rating, dataset.collection.len());
}
