//! Sharding is a layout detail: property tests that the prepare phase is
//! **bit-identical** across grid shard counts and prepare worker counts.
//!
//! The sharded [`GridIndex`] splits cells into column bands with one lock
//! each so builds and keyword scoring can fan out; merging per-shard results
//! in shard order must reconstruct exactly the single-shard answer.  Here a
//! random object placement is indexed at shard counts 1, 2, 4 and 7 (7 does
//! not divide the column count, so bands are uneven) and queried with random
//! rectangles — including rects straddling shard boundaries and rects
//! containing no node at all — and every derived artefact is compared
//! bit-for-bit against the single-shard reference:
//!
//! * the keyword scores (`NodeWeights`: node and object maps, `f64::to_bits`);
//! * the prepared [`QueryGraph`]: per-node (global id, weight bits, scaled
//!   weight) in CSR order plus every edge with its length bits,
//!
//! at 1 and 3 prepare workers (3 leaves a remainder band at 4 shards).

use lcmsr::core::engine::LcmsrEngine;
use lcmsr::core::prelude::{QueryGraph, QueryWorkspace};
use lcmsr::core::LcmsrQuery;
use lcmsr::geotext::collection::NodeWeights;
use lcmsr::geotext::{GeoTextObject, ObjectCollection};
use lcmsr::roadnet::{GraphBuilder, NodeId, Point, Rect, RoadNetwork};
use proptest::prelude::*;

const SIDE: usize = 6;
const SPACING: f64 = 100.0;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const KEYWORDS: [&str; 3] = ["restaurant", "cafe", "museum"];

/// A `SIDE × SIDE` grid network with one object per entry of `placements`:
/// `(node, keyword)` pairs, the keyword index rotating through [`KEYWORDS`].
fn grid_world(placements: &[(usize, usize)]) -> (RoadNetwork, Vec<GeoTextObject>) {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..SIDE {
        for x in 0..SIDE {
            ids.push(b.add_node(Point::new(x as f64 * SPACING, y as f64 * SPACING)));
        }
    }
    for y in 0..SIDE {
        for x in 0..SIDE {
            let i = y * SIDE + x;
            if x + 1 < SIDE {
                b.add_edge(ids[i], ids[i + 1], SPACING).unwrap();
            }
            if y + 1 < SIDE {
                b.add_edge(ids[i], ids[i + SIDE], SPACING).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let objects = placements
        .iter()
        .enumerate()
        .map(|(oid, &(node, kw))| {
            let p = network.point(NodeId((node % (SIDE * SIDE)) as u32));
            GeoTextObject::from_keywords(
                oid as u64,
                // Offset by the object id so co-located objects stay distinct
                // points; all offsets stay inside the host node's cell.
                Point::new(p.x + 1.0 + oid as f64 * 0.25, p.y + 1.0),
                [KEYWORDS[kw % KEYWORDS.len()]],
            )
        })
        .collect();
    (network, objects)
}

/// Per-node (global id, weight bits, scaled weight) in CSR order plus
/// per-edge (a, b, length bits).
type GraphFingerprint = (Vec<(u32, u64, u64)>, Vec<(u32, u32, u64)>);

/// Bit-exact content of a prepared query graph (CSR node order + edges).
fn graph_fingerprint(graph: &QueryGraph) -> GraphFingerprint {
    let nodes = graph
        .node_indices()
        .map(|v| {
            (
                graph.global_node(v).0,
                graph.weight(v).to_bits(),
                graph.scaled_weight(v),
            )
        })
        .collect();
    let edges = graph
        .edges()
        .iter()
        .map(|e| (e.a, e.b, e.length.to_bits()))
        .collect();
    (nodes, edges)
}

/// Per-node and per-object (id, score bits) of a keyword-scoring result.
type WeightsFingerprint = (Vec<(u32, u64)>, Vec<(u64, u64)>);

/// Bit-exact content of a keyword-scoring result.
fn weights_fingerprint(w: &NodeWeights) -> WeightsFingerprint {
    (
        w.by_node.iter().map(|(n, w)| (n.0, w.to_bits())).collect(),
        w.by_object
            .iter()
            .map(|(o, w)| (o.0, w.to_bits()))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random placements, random rects (shifted off the node lattice so they
    /// straddle cell and shard boundaries; degenerate spans still have
    /// positive area but may contain zero nodes): keyword scores and the
    /// prepared query graph are bit-identical across shard counts 1/2/4/7
    /// and across 1 vs 3 prepare workers.
    #[test]
    fn prepare_is_bit_identical_across_shard_counts(
        placements in collection::vec((0usize..SIDE * SIDE, 0usize..KEYWORDS.len()), 1..24),
        rect_cells in collection::vec((0usize..SIDE, 0usize..SIDE, 0usize..SIDE, 0usize..SIDE), 1..5),
        shift_third in 0usize..3,
        delta_blocks in 1usize..7,
    ) {
        let (network, objects) = grid_world(&placements);
        // The shift places rect borders on nodes (0), between nodes (half a
        // block) or just past nodes (a tenth of a block) — the latter two
        // straddle grid-cell and shard-column boundaries.
        let shift = [0.0, SPACING / 2.0, SPACING / 10.0][shift_third];
        let delta = delta_blocks as f64 * SPACING;

        let reference = ObjectCollection::build_sharded(
            &network, objects.clone(), SPACING / 2.0, 1, 1,
        ).unwrap();
        let ref_engine = LcmsrEngine::new(&network, &reference);

        let mut rects = Vec::new();
        for &(x0, y0, w, h) in &rect_cells {
            rects.push(Rect::new(
                x0 as f64 * SPACING + shift,
                y0 as f64 * SPACING + shift,
                (x0 + w.max(1)) as f64 * SPACING + shift,
                (y0 + h.max(1)) as f64 * SPACING + shift,
            ));
        }
        // A node-free rect (all nodes sit on multiples of SPACING) and one
        // clear of the network: same pipeline, zero members.
        rects.push(Rect::new(110.0, 110.0, 190.0, 190.0));
        rects.push(Rect::new(SIDE as f64 * SPACING + 50.0, 0.0, SIDE as f64 * SPACING + 150.0, 100.0));

        for &shards in &SHARD_COUNTS {
            // Build the sharded index with a parallel fill (3 workers leaves
            // an uneven remainder against 2 and 4 shards).
            let collection = ObjectCollection::build_sharded(
                &network, objects.clone(), SPACING / 2.0, shards, 3,
            ).unwrap();
            prop_assert_eq!(collection.len(), reference.len());
            prop_assert_eq!(collection.keyword_count(), reference.keyword_count());
            let engine = LcmsrEngine::new(&network, &collection);

            for rect in &rects {
                prop_assert_eq!(
                    weights_fingerprint(
                        &collection.node_weights(&collection.query_vector(&KEYWORDS), rect)
                    ),
                    weights_fingerprint(
                        &reference.node_weights(&reference.query_vector(&KEYWORDS), rect)
                    ),
                    "scores diverged at {} shards for {:?}", shards, rect
                );

                // A rect with no node (or no relevant object) makes prepare
                // fail; the failure itself must be layout-independent too.
                let query = LcmsrQuery::new(KEYWORDS, delta, *rect).unwrap();
                ref_engine.set_prepare_workers(1);
                let mut ws = QueryWorkspace::new();
                let expected = match ref_engine.prepare_with(&mut ws, &query, 0.5) {
                    Ok(g) => {
                        let fp = graph_fingerprint(&g);
                        ref_engine.release(&mut ws, g);
                        Ok(fp)
                    }
                    Err(e) => Err(format!("{e:?}")),
                };
                for workers in [1usize, 3] {
                    engine.set_prepare_workers(workers);
                    let got = match engine.prepare_with(&mut ws, &query, 0.5) {
                        Ok(g) => {
                            let fp = graph_fingerprint(&g);
                            engine.release(&mut ws, g);
                            Ok(fp)
                        }
                        Err(e) => Err(format!("{e:?}")),
                    };
                    prop_assert_eq!(
                        &got, &expected,
                        "query graph diverged at {} shards / {} workers for {:?}",
                        shards, workers, rect
                    );
                }
            }
        }
    }
}
