//! End-to-end integration tests: synthetic dataset → index → query workload →
//! all three LCMSR algorithms, checking the invariants the paper's evaluation
//! relies on (feasibility, accuracy ordering, runtime sanity).

use lcmsr::prelude::*;

mod common;
use common::*;

fn dataset() -> Dataset {
    Dataset::build(DatasetConfig::tiny(17))
}

fn workload(dataset: &Dataset, n: usize, keywords: usize, seed: u64) -> Vec<LcmsrQuery> {
    let mut params = dataset.default_query_params(seed);
    params.num_queries = n;
    params.num_keywords = keywords;
    dataset
        .queries(&params)
        .into_iter()
        .map(|q| LcmsrQuery::new(q.keywords, q.delta, q.rect).unwrap())
        .collect()
}

#[test]
fn every_algorithm_returns_feasible_connected_regions() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = workload(&dataset, 6, 3, 5);
    assert!(!queries.is_empty());
    let algorithms = vec![
        Algorithm::App(AppParams::default()),
        Algorithm::Tgen(TgenParams { alpha: 5.0 }),
        Algorithm::Greedy(GreedyParams::default()),
    ];
    for query in &queries {
        let view = RegionView::new(&dataset.network, query.region_of_interest);
        for algorithm in &algorithms {
            let result = run1(&engine, query, algorithm).expect("query must run");
            let Some(region) = result.region else {
                continue; // a workload query may have sparse areas for some keywords
            };
            // Length constraint.
            assert!(
                region.length <= query.delta + 1e-6,
                "{} violated ∆: {} > {}",
                algorithm.name(),
                region.length,
                query.delta
            );
            // All nodes inside Q.Λ.
            for &node in &region.nodes {
                assert!(
                    query
                        .region_of_interest
                        .contains(&dataset.network.point(node)),
                    "{} returned a node outside Q.Λ",
                    algorithm.name()
                );
            }
            // Connectivity via the returned edges.
            assert!(
                view.is_connected_region(&region.nodes, &region.edges),
                "{} returned a disconnected region",
                algorithm.name()
            );
            // Region weight equals the sum of its nodes' query weights.
            let weights = dataset
                .collection
                .node_weights_for_keywords(&query.keywords, &query.region_of_interest);
            let recomputed: f64 = region.nodes.iter().map(|&n| weights.weight(n)).sum();
            assert!(
                (recomputed - region.weight).abs() < 1e-6,
                "{} weight mismatch: {} vs {}",
                algorithm.name(),
                region.weight,
                recomputed
            );
        }
    }
}

#[test]
fn accuracy_ordering_matches_the_paper() {
    // Paper §7.2.2: TGEN has the best accuracy, APP stays above ~90 % of TGEN,
    // Greedy is clearly worse on average.  We check the averages over a small
    // workload (individual queries may deviate).
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let queries = workload(&dataset, 8, 3, 29);
    let mut sums = [0.0f64; 3];
    let mut counted = 0usize;
    for query in &queries {
        let tgen = run1(&engine, query, &Algorithm::Tgen(TgenParams { alpha: 5.0 }))
            .unwrap()
            .region
            .map_or(0.0, |r| r.weight);
        if tgen <= 0.0 {
            continue;
        }
        let app = run1(&engine, query, &Algorithm::App(AppParams::default()))
            .unwrap()
            .region
            .map_or(0.0, |r| r.weight);
        let greedy = run1(&engine, query, &Algorithm::Greedy(GreedyParams::default()))
            .unwrap()
            .region
            .map_or(0.0, |r| r.weight);
        sums[0] += tgen;
        sums[1] += app;
        sums[2] += greedy;
        counted += 1;
    }
    assert!(counted >= 4, "workload produced too few answerable queries");
    let [tgen_avg, app_avg, greedy_avg] = sums.map(|s| s / counted as f64);
    assert!(
        app_avg >= 0.6 * tgen_avg,
        "APP avg {app_avg} vs TGEN {tgen_avg}"
    );
    assert!(
        greedy_avg <= tgen_avg + 1e-9,
        "Greedy avg {greedy_avg} should not beat TGEN {tgen_avg}"
    );
}

#[test]
fn growing_delta_never_hurts_the_result() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let roi = dataset.network.bounding_rect().unwrap();
    let mut previous = 0.0;
    for delta in [300.0, 600.0, 1_200.0, 2_400.0] {
        let query = LcmsrQuery::new(["restaurant"], delta, roi).unwrap();
        let weight = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 5.0 }))
            .unwrap()
            .region
            .map_or(0.0, |r| r.weight);
        assert!(
            weight + 1e-9 >= previous,
            "weight decreased from {previous} to {weight} when ∆ grew to {delta}"
        );
        previous = weight;
    }
    assert!(previous > 0.0);
}

#[test]
fn growing_the_region_of_interest_never_hurts() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let full = dataset.network.bounding_rect().unwrap();
    let center = full.center();
    let mut previous = 0.0;
    for side in [800.0, 1_600.0, 3_200.0, full.width().max(full.height())] {
        let roi = Rect::centered_square(center, side);
        let query = LcmsrQuery::new(["cafe", "coffee"], 900.0, roi).unwrap();
        let weight = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 5.0 }))
            .unwrap()
            .region
            .map_or(0.0, |r| r.weight);
        assert!(
            weight + 1e-9 >= previous,
            "weight decreased from {previous} to {weight} when Λ grew to {side} m"
        );
        previous = weight;
    }
}

#[test]
fn statistics_reflect_the_work_done() {
    let dataset = dataset();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let roi = dataset.network.bounding_rect().unwrap();
    let query = LcmsrQuery::new(["restaurant", "pizza"], 1_000.0, roi).unwrap();

    let app = run1(&engine, &query, &Algorithm::App(AppParams::default())).unwrap();
    assert_eq!(app.stats.algorithm, "APP");
    assert!(app.stats.nodes_in_region > 0);
    assert!(app.stats.kmst_calls > 0, "APP must call the k-MST oracle");

    let tgen = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 5.0 })).unwrap();
    assert!(tgen.stats.tuples_generated > 0, "TGEN must generate tuples");

    let greedy = run1(&engine, &query, &Algorithm::Greedy(GreedyParams::default())).unwrap();
    assert!(
        greedy.stats.greedy_steps > 0,
        "Greedy must expand at least once"
    );
    // The paper's headline efficiency ordering: Greedy is the fastest by far.
    assert!(greedy.stats.elapsed <= app.stats.elapsed * 4);
}

#[test]
fn usanw_like_dataset_also_answers_queries() {
    let dataset = Dataset::build(DatasetConfig::usanw(NetworkScale::Tiny, 9));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let mut params = dataset.default_query_params(31);
    params.num_queries = 4;
    let queries = dataset.queries(&params);
    let mut answered = 0;
    for q in queries {
        let query = LcmsrQuery::new(q.keywords, q.delta, q.rect).unwrap();
        let result = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 5.0 })).unwrap();
        if let Some(region) = result.region {
            assert!(region.length <= query.delta + 1e-6);
            answered += 1;
        }
    }
    assert!(answered > 0, "no USANW-like query produced a region");
}
