//! Deadline-aware anytime execution (PR 6): the unified `QueryRequest` API
//! must honour deadlines without ever *changing* a result it had time to
//! compute.
//!
//! Three contracts pin the design:
//!
//! * **No-perturbation** — a deadline generous enough that the run finishes
//!   before it fires produces a bit-identical result to a no-deadline run
//!   (the inert-token property, checked property-style across random
//!   instances and all four algorithms),
//! * **Anytime** — a deadline the solver cannot meet still yields a *usable*
//!   answer: `partial: true`, the cause attributed, and any returned region
//!   feasible (within budget, inside the query rectangle),
//! * **Promptness** — a deadlined run returns within the deadline plus a
//!   small slack (the cooperative poll points are dense enough to matter).

use lcmsr::core::engine::{Algorithm, LcmsrEngine, QueryRequest};
use lcmsr::core::prelude::PartialCause;
use lcmsr::core::{AppParams, Deadline, GreedyParams, LcmsrQuery, TgenParams};
use lcmsr::geotext::{GeoTextObject, ObjectCollection};
use lcmsr::roadnet::{GraphBuilder, NodeId, Point, Rect, RoadNetwork};
use proptest::prelude::*;
use std::time::{Duration, Instant};

mod common;
use common::*;

/// Builds a `side × side` grid road network with `spacing`-metre blocks and a
/// restaurant at each listed node (index into the row-major grid).
fn grid_world(
    side: usize,
    spacing: f64,
    restaurant_nodes: &[usize],
) -> (RoadNetwork, ObjectCollection) {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                b.add_edge(ids[i], ids[i + 1], spacing).unwrap();
            }
            if y + 1 < side {
                b.add_edge(ids[i], ids[i + side], spacing).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let objects: Vec<GeoTextObject> = restaurant_nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let p = network.point(NodeId((node % (side * side)) as u32));
            GeoTextObject::from_keywords(i as u64, Point::new(p.x + 1.0, p.y + 1.0), ["restaurant"])
        })
        .collect();
    let collection = ObjectCollection::build(&network, objects, spacing.max(50.0)).unwrap();
    (network, collection)
}

fn whole(network: &RoadNetwork) -> Rect {
    network.bounding_rect().unwrap().expanded(10.0)
}

/// Exhaustive bitwise equality between two optional regions.
fn assert_identical(
    a: &Option<lcmsr::core::Region>,
    b: &Option<lcmsr::core::Region>,
    context: &str,
) {
    match (a, b) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.nodes, y.nodes, "{context}: node sets differ");
            assert_eq!(x.edges, y.edges, "{context}: edge sets differ");
            assert_eq!(
                x.weight.to_bits(),
                y.weight.to_bits(),
                "{context}: weights differ"
            );
            assert_eq!(
                x.length.to_bits(),
                y.length.to_bits(),
                "{context}: lengths differ"
            );
        }
        _ => panic!("{context}: one run found a region, the other did not"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Inert-token property: a run that finishes before its deadline fires is
    /// bit-identical to a run with no deadline at all — polling a disarmed
    /// (or armed-but-unfired) token must not perturb any tie-break, ordering,
    /// or accumulation anywhere in the solve phase.
    #[test]
    fn runs_finishing_before_the_deadline_are_bit_identical(
        restaurants in collection::btree_set(0usize..16, 2..10),
        delta_blocks in 1usize..6,
    ) {
        // A 4×4 grid keeps the instance inside Exact's 20-node limit while
        // still exercising every algorithm's full solve phase.
        let restaurants: Vec<usize> = restaurants.into_iter().collect();
        let (network, collection) = grid_world(4, 100.0, &restaurants);
        let engine = LcmsrEngine::new(&network, &collection);
        let delta = delta_blocks as f64 * 100.0;
        let query = LcmsrQuery::new(["restaurant"], delta, whole(&network)).unwrap();
        for algorithm in [
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::App(AppParams::default()),
            Algorithm::Greedy(GreedyParams::default()),
            Algorithm::Exact,
        ] {
            let free = engine
                .execute(&QueryRequest::new(&query, algorithm.clone()))
                .unwrap()
                .into_single();
            // A one-hour deadline never fires inside a 16-node solve.
            let deadlined = engine
                .execute(
                    &QueryRequest::new(&query, algorithm.clone())
                        .deadline(Deadline::after(Duration::from_secs(3600))),
                )
                .unwrap()
                .into_single();
            assert!(!free.stats.partial);
            assert!(
                !deadlined.stats.partial,
                "{}: a 1-hour deadline must not fire",
                algorithm.name()
            );
            assert_identical(&free.region, &deadlined.region, algorithm.name());
        }
    }
}

/// An already-expired deadline on the Exact enumeration returns the
/// best-so-far incumbent promptly: partial, attributed, feasible, and well
/// within the deadline + 25% promptness envelope (generous absolute slack
/// covers the prepare phase and scheduler noise on shared runners).
#[test]
fn tight_deadline_interrupts_exact_with_a_feasible_partial() {
    // 4×4 grid = 16 nodes, inside the Exact node limit but 2^16 masks deep.
    let all: Vec<usize> = (0..16).collect();
    let (network, collection) = grid_world(4, 100.0, &all);
    let engine = LcmsrEngine::new(&network, &collection);
    let query = LcmsrQuery::new(["restaurant"], 600.0, whole(&network)).unwrap();

    let started = Instant::now();
    let result = engine
        .execute(
            &QueryRequest::new(&query, Algorithm::Exact).deadline(Deadline::after(Duration::ZERO)),
        )
        .unwrap()
        .into_single();
    let elapsed = started.elapsed();

    assert!(result.stats.partial, "an expired deadline must interrupt");
    assert_eq!(
        result.stats.partial_cause,
        Some(PartialCause::DeadlineExceeded)
    );
    assert_eq!(result.stats.deadline, Some(Duration::ZERO));
    // Promptness: the poll stride bounds the overshoot; allow wide absolute
    // slack so the test never flakes on loaded CI machines.
    assert!(
        elapsed < Duration::from_millis(250),
        "interrupted Exact took {elapsed:?}"
    );
    // Anytime: whatever came back must be feasible.
    if let Some(region) = &result.region {
        assert!(region.length <= 600.0 + 1e-9);
        assert!(!region.nodes.is_empty());
    }
    // The full run dominates (or matches) any interrupted incumbent.
    let full = run1(&engine, &query, &Algorithm::Exact).unwrap();
    let full_weight = full.region.as_ref().map_or(0.0, |r| r.weight);
    let partial_weight = result.region.as_ref().map_or(0.0, |r| r.weight);
    assert!(full_weight >= partial_weight - 1e-12);
}

/// The same anytime contract for TGEN on a larger instance: an expired
/// deadline stops the edge enumeration at its next poll point and the
/// incumbents returned are feasible.
#[test]
fn tight_deadline_interrupts_tgen_with_a_feasible_partial() {
    let all: Vec<usize> = (0..400).collect();
    let (network, collection) = grid_world(20, 100.0, &all);
    let engine = LcmsrEngine::new(&network, &collection);
    let query = LcmsrQuery::new(["restaurant"], 1200.0, whole(&network)).unwrap();

    let started = Instant::now();
    let result = engine
        .execute(
            &QueryRequest::new(&query, Algorithm::Tgen(TgenParams { alpha: 1.0 }))
                .deadline(Deadline::after(Duration::ZERO)),
        )
        .unwrap()
        .into_single();
    let elapsed = started.elapsed();

    assert!(result.stats.partial);
    assert_eq!(
        result.stats.partial_cause,
        Some(PartialCause::DeadlineExceeded)
    );
    assert!(
        elapsed < Duration::from_millis(500),
        "interrupted TGEN took {elapsed:?}"
    );
    if let Some(region) = &result.region {
        assert!(region.length <= 1200.0 + 1e-9);
    }
}

/// Deadlines ride through the batched path too: each member of a batch
/// carries its own deadline, so one doomed member reports partial while its
/// siblings run to completion and stay bit-identical to solo runs.
#[test]
fn batched_members_honour_their_own_deadlines() {
    let restaurants: Vec<usize> = vec![0, 1, 5, 6, 12, 17, 23];
    let (network, collection) = grid_world(5, 100.0, &restaurants);
    let engine = LcmsrEngine::new(&network, &collection);
    let roi = whole(&network);
    let tgen = Algorithm::Tgen(TgenParams { alpha: 1.0 });
    let q1 = LcmsrQuery::new(["restaurant"], 300.0, roi).unwrap();
    let q2 = LcmsrQuery::new(["restaurant"], 500.0, roi).unwrap();

    let requests = vec![
        QueryRequest::new(&q1, tgen.clone()),
        QueryRequest::new(&q2, tgen.clone()).deadline(Deadline::after(Duration::ZERO)),
    ];
    let outcomes = engine.execute_batch_with(&requests, 2).unwrap();
    let results: Vec<_> = outcomes
        .into_iter()
        .map(lcmsr::prelude::QueryOutcome::into_single)
        .collect();

    assert!(
        !results[0].stats.partial,
        "undeadlined member stays complete"
    );
    assert!(results[1].stats.partial, "doomed member reports partial");
    let solo = run1(&engine, &q1, &tgen).unwrap();
    assert_identical(&solo.region, &results[0].region, "undeadlined member");
}
