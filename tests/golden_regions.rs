//! Committed golden-region snapshot test.
//!
//! `tests/golden/regions_ny_tiny.txt` pins the bit-exact output — single best
//! region and top-3 regions for TGEN, APP and Greedy — over the deterministic
//! 32-query tiny-NY workload (`lcmsr_bench::golden_workload`).  This is the
//! machine-checked version of the cross-worktree diffs PRs 2–3 ran by hand:
//! any solver change that shifts a single bit of any result line fails here.
//!
//! Provenance: the snapshot was first rendered from the pre-frontier (PR 4)
//! solvers.  When the Pareto-frontier `TupleArray` landed (PR 5), all 96
//! `single` lines and every TGEN/Greedy `top3` line were verified bit-
//! identical against that PR 4 render; 17 APP `top3` runner-up lines were
//! then regenerated under the documented dominance semantics (each vanished
//! runner-up is dominated — scaled weight ≤, length ≥ — by a region the new
//! list reports; see `lcmsr_core::tuple_array`).
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! cargo run --release -p lcmsr-bench --bin experiments -- \
//!     dump --out tests/golden/regions_ny_tiny.txt
//! ```
//!
//! and justify the regeneration in the commit message.

use lcmsr_bench::{ny_dataset, render_golden_dump, render_golden_dump_traced};
use lcmsr_datagen::prelude::NetworkScale;

const COMMITTED: &str = include_str!("golden/regions_ny_tiny.txt");

/// Rebuilds the dump from scratch (dataset generation included) and compares
/// byte for byte against the committed snapshot.  On mismatch the first
/// diverging line is reported before the full assert, so a failure points
/// straight at the query/algorithm that moved.
#[test]
fn golden_regions_are_bit_identical_to_the_committed_snapshot() {
    let dataset = ny_dataset(NetworkScale::Tiny);
    let fresh = render_golden_dump(&dataset);
    if fresh != COMMITTED {
        let mut diverged = None;
        for (i, (got, want)) in fresh.lines().zip(COMMITTED.lines()).enumerate() {
            if got != want {
                diverged = Some((i + 1, want.to_string(), got.to_string()));
                break;
            }
        }
        match diverged {
            Some((line, want, got)) => panic!(
                "golden dump diverged at line {line}:\n  committed: {want}\n  fresh:     {got}"
            ),
            None => panic!(
                "golden dump diverged in length: committed {} lines, fresh {} lines",
                COMMITTED.lines().count(),
                fresh.lines().count()
            ),
        }
    }
}

/// The same dump rendered with span tracing *enabled* is byte-identical to
/// the committed snapshot: the trace collector only observes — arming it
/// must never perturb a solver result, prune decision or tie-break.  (The
/// disabled-collector direction is the main test above, since
/// `render_golden_dump` runs untraced.)
#[test]
fn golden_regions_are_bit_identical_with_tracing_enabled() {
    let dataset = ny_dataset(NetworkScale::Tiny);
    let traced = render_golden_dump_traced(&dataset, true);
    if traced != COMMITTED {
        for (i, (got, want)) in traced.lines().zip(COMMITTED.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "traced render diverged from the committed snapshot at line {}",
                i + 1
            );
        }
        panic!(
            "traced render diverged in length: committed {} lines, traced {} lines",
            COMMITTED.lines().count(),
            traced.lines().count()
        );
    }
}

/// The snapshot has the expected shape: a header plus one `single` line per
/// (algorithm, query) and between one and three `top3` lines each.
#[test]
fn committed_snapshot_is_well_formed() {
    let mut singles = 0usize;
    let mut top3 = 0usize;
    for line in COMMITTED.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let algo = fields.next().expect("algorithm column");
        assert!(
            matches!(algo, "TGEN" | "APP" | "Greedy"),
            "unexpected algorithm {algo:?}"
        );
        let query = fields.next().expect("query column");
        assert!(query.starts_with('q'), "unexpected query id {query:?}");
        match fields.next().expect("kind column") {
            "single" => singles += 1,
            "top3" => top3 += 1,
            other => panic!("unexpected kind {other:?}"),
        }
    }
    assert_eq!(singles, 3 * 32, "one single line per algorithm per query");
    assert!(
        top3 >= 3 * 32,
        "at least one top3 line per algorithm per query, got {top3}"
    );
}
