//! Approximation-quality tests: on small query regions the exact solver is
//! feasible, so APP's (5+ε) guarantee (Theorem 4) and the empirical accuracy
//! ordering of the paper can be verified directly, including with
//! property-based random instances.

use lcmsr::core::engine::{Algorithm, LcmsrEngine};
use lcmsr::core::{AppParams, GreedyParams, LcmsrQuery, TgenParams};
use lcmsr::geotext::{GeoTextObject, ObjectCollection};
use lcmsr::roadnet::{GraphBuilder, NodeId, Point, Rect, RoadNetwork};
use proptest::prelude::*;

mod common;
use common::*;

/// Builds a `side × side` grid road network with `spacing`-metre blocks and a
/// restaurant placed at each node listed in `restaurant_nodes` (index into the
/// row-major grid).
fn grid_world(
    side: usize,
    spacing: f64,
    restaurant_nodes: &[usize],
) -> (RoadNetwork, ObjectCollection) {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                b.add_edge(ids[i], ids[i + 1], spacing).unwrap();
            }
            if y + 1 < side {
                b.add_edge(ids[i], ids[i + side], spacing).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let objects: Vec<GeoTextObject> = restaurant_nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let p = network.point(NodeId((node % (side * side)) as u32));
            // Offset slightly so several objects on one node stay distinct points.
            GeoTextObject::from_keywords(i as u64, Point::new(p.x + 1.0, p.y + 1.0), ["restaurant"])
        })
        .collect();
    let collection = ObjectCollection::build(&network, objects, spacing.max(50.0)).unwrap();
    (network, collection)
}

fn whole(network: &RoadNetwork) -> Rect {
    network.bounding_rect().unwrap().expanded(10.0)
}

#[test]
fn app_meets_its_theoretical_guarantee_on_small_instances() {
    // 4×4 grid (16 nodes) keeps the exact solver fast.
    let placements: Vec<Vec<usize>> = vec![
        vec![0, 1, 2, 5, 10, 15],
        vec![0, 3, 12, 15],
        vec![5, 6, 9, 10],
        vec![0, 1, 4, 5, 2, 8, 7, 13],
    ];
    for restaurants in placements {
        let (network, collection) = grid_world(4, 100.0, &restaurants);
        let engine = LcmsrEngine::new(&network, &collection);
        for delta in [150.0, 300.0, 500.0] {
            let query = LcmsrQuery::new(["restaurant"], delta, whole(&network)).unwrap();
            let exact = run1(&engine, &query, &Algorithm::Exact)
                .unwrap()
                .region
                .expect("exact optimum exists");
            let params = AppParams::default();
            let app = run1(&engine, &query, &Algorithm::App(params))
                .unwrap()
                .region
                .expect("APP returns a region");
            assert!(app.length <= delta + 1e-6);
            // Theorem 4: weight ≥ (1−α)/(5+5β) of the optimum.
            let bound = (1.0 - params.alpha) / (5.0 + 5.0 * params.beta);
            assert!(
                app.weight >= bound * exact.weight - 1e-9,
                "APP weight {} below the (5+ε) bound {} of optimum {}",
                app.weight,
                bound * exact.weight,
                exact.weight
            );
            // In practice APP does far better; flag egregious regressions.
            assert!(
                app.weight >= 0.5 * exact.weight,
                "APP weight {} is under half the optimum {}",
                app.weight,
                exact.weight
            );
        }
    }
}

#[test]
fn tgen_is_at_least_as_accurate_as_greedy_on_average() {
    let placements: Vec<Vec<usize>> = vec![
        vec![0, 1, 2, 3, 6, 9, 12],
        vec![0, 5, 10, 15, 1, 6, 11],
        vec![2, 3, 6, 7, 8, 12],
    ];
    let mut tgen_total = 0.0;
    let mut greedy_total = 0.0;
    for restaurants in placements {
        let (network, collection) = grid_world(4, 100.0, &restaurants);
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 350.0, whole(&network)).unwrap();
        let exact = run1(&engine, &query, &Algorithm::Exact)
            .unwrap()
            .region
            .unwrap();
        let tgen = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 0.5 }))
            .unwrap()
            .region
            .unwrap();
        let greedy = run1(&engine, &query, &Algorithm::Greedy(GreedyParams::default()))
            .unwrap()
            .region
            .unwrap();
        // Nothing may exceed the optimum.
        assert!(tgen.weight <= exact.weight + 1e-9);
        assert!(greedy.weight <= exact.weight + 1e-9);
        tgen_total += tgen.weight;
        greedy_total += greedy.weight;
    }
    assert!(
        tgen_total + 1e-9 >= greedy_total,
        "TGEN total {tgen_total} must be at least Greedy total {greedy_total}"
    );
}

#[test]
fn tgen_with_fine_scaling_matches_exact_on_tiny_instances() {
    let (network, collection) = grid_world(3, 100.0, &[0, 1, 3, 4, 8]);
    let engine = LcmsrEngine::new(&network, &collection);
    for delta in [100.0, 200.0, 300.0, 450.0] {
        let query = LcmsrQuery::new(["restaurant"], delta, whole(&network)).unwrap();
        let exact = run1(&engine, &query, &Algorithm::Exact)
            .unwrap()
            .region
            .unwrap();
        let tgen = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 0.1 }))
            .unwrap()
            .region
            .unwrap();
        assert!(
            (tgen.weight - exact.weight).abs() < 1e-6,
            "∆={delta}: TGEN {} vs exact {}",
            tgen.weight,
            exact.weight
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random placements on a 4×4 grid: all algorithms stay feasible, none
    /// exceeds the exact optimum, and APP honours its approximation bound.
    #[test]
    fn randomized_instances_respect_bounds(
        restaurants in collection::btree_set(0usize..16, 2..9),
        delta_blocks in 1usize..6,
    ) {
        let restaurants: Vec<usize> = restaurants.into_iter().collect();
        let (network, collection) = grid_world(4, 100.0, &restaurants);
        let engine = LcmsrEngine::new(&network, &collection);
        let delta = delta_blocks as f64 * 100.0;
        let query = LcmsrQuery::new(["restaurant"], delta, whole(&network)).unwrap();
        let exact = run1(&engine, &query, &Algorithm::Exact).unwrap().region.unwrap();
        let params = AppParams::default();
        let bound = (1.0 - params.alpha) / (5.0 + 5.0 * params.beta);

        let app = run1(&engine, &query, &Algorithm::App(params)).unwrap().region.unwrap();
        prop_assert!(app.length <= delta + 1e-6);
        prop_assert!(app.weight <= exact.weight + 1e-9);
        prop_assert!(app.weight >= bound * exact.weight - 1e-9);

        let tgen = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 0.5 }))
            .unwrap()
            .region
            .unwrap();
        prop_assert!(tgen.length <= delta + 1e-6);
        prop_assert!(tgen.weight <= exact.weight + 1e-9);

        let greedy = run1(&engine, &query, &Algorithm::Greedy(GreedyParams::default()))
            .unwrap()
            .region
            .unwrap();
        prop_assert!(greedy.length <= delta + 1e-6);
        prop_assert!(greedy.weight <= exact.weight + 1e-9);
    }
}
