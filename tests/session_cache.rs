//! Exploration-session integration tests: the response cache and the
//! delta-prepare path must be invisible in the answers.  Whatever mix of
//! cold runs, cache-mode misses, delta re-queries and cache hits a session
//! produces, every step's regions are bit-identical to a cacheless engine —
//! and the cache's bookkeeping (LRU eviction, epoch invalidation) only ever
//! changes *when* the engine recomputes, never *what* it answers.

use lcmsr::core::engine::{Algorithm, LcmsrEngine, QueryRequest, QueryWorkspace};
use lcmsr::core::{GreedyParams, LcmsrQuery, TgenParams};
use lcmsr::geotext::{GeoTextObject, ObjectCollection};
use lcmsr::roadnet::{GraphBuilder, NodeId, Point, Rect, RoadNetwork};
use proptest::prelude::*;

mod common;
use common::*;

/// Builds a `side × side` grid road network with `spacing`-metre blocks and a
/// restaurant at each listed node (index into the row-major grid).
fn grid_world(
    side: usize,
    spacing: f64,
    restaurant_nodes: &[usize],
) -> (RoadNetwork, ObjectCollection) {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                b.add_edge(ids[i], ids[i + 1], spacing).unwrap();
            }
            if y + 1 < side {
                b.add_edge(ids[i], ids[i + side], spacing).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let objects: Vec<GeoTextObject> = restaurant_nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let p = network.point(NodeId((node % (side * side)) as u32));
            GeoTextObject::from_keywords(i as u64, Point::new(p.x + 1.0, p.y + 1.0), ["restaurant"])
        })
        .collect();
    let collection = ObjectCollection::build(&network, objects, spacing.max(50.0)).unwrap();
    (network, collection)
}

/// Bit-exact region fingerprint: Debug's shortest-roundtrip float rendering
/// distinguishes every bit pattern, `-0.0` included.
fn print_regions(outcome: &lcmsr::core::engine::QueryOutcome) -> String {
    format!("{:?}", outcome.regions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant, end to end: a random pan/zoom trace answered
    /// three ways — cold (cache off), in a cache-mode session (misses and
    /// delta re-queries on one workspace), and replayed over the warm cache
    /// (hits) — produces three bit-identical answer streams.
    #[test]
    fn session_steps_replay_bit_identically(
        restaurants in collection::btree_set(0usize..36, 3..12),
        delta_blocks in 2usize..7,
        moves in collection::vec((0i8..3, 0i8..3, 1u8..4), 2..7),
    ) {
        let restaurants: Vec<usize> = restaurants.into_iter().collect();
        let (network, collection) = grid_world(6, 100.0, &restaurants);
        let engine = LcmsrEngine::new(&network, &collection);
        let delta = delta_blocks as f64 * 100.0;

        // A viewport walk over the grid: each move pans by a fraction of the
        // view and/or rescales it, so successive rects overlap by varying
        // amounts — above and below the delta-eligibility threshold both.
        let mut rect = Rect::new(-10.0, -10.0, 330.0, 330.0);
        let mut queries = vec![LcmsrQuery::new(["restaurant"], delta, rect).unwrap()];
        for &(dx, dy, scale) in &moves {
            let (w, h) = (rect.width(), rect.height());
            let f = 0.2;
            let shifted = Rect::new(
                rect.min_x + f64::from(dx - 1) * f * w,
                rect.min_y + f64::from(dy - 1) * f * h,
                rect.max_x + f64::from(dx - 1) * f * w,
                rect.max_y + f64::from(dy - 1) * f * h,
            );
            let factor = 0.5 + f64::from(scale) * 0.25; // 0.75 / 1.0 / 1.25
            rect = Rect::centered(shifted.center(), shifted.width() * factor, shifted.height() * factor);
            // The walk stays over the populated grid: clamp the center back
            // when a step would leave every restaurant behind.
            if rect.max_x < 0.0 || rect.min_x > 520.0 || rect.max_y < 0.0 || rect.min_y > 520.0 {
                rect = Rect::centered(Point::new(260.0, 260.0), rect.width(), rect.height());
            }
            queries.push(LcmsrQuery::new(["restaurant"], delta, rect).unwrap());
        }

        for algorithm in [
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            engine.response_cache().clear();
            // Cold reference: cache off, pooled workspaces.
            let mut cold = Vec::new();
            for q in &queries {
                let outcome = engine
                    .execute(&QueryRequest::new(q, algorithm.clone()))
                    .expect("cold step");
                prop_assert!(!outcome.stats.cache);
                cold.push(print_regions(&outcome));
            }
            // Session pass: one workspace, cache on — mostly misses (some of
            // them delta-prepared from the previous step's scores); a walk
            // that revisits a viewport exactly hits, which is the point.
            let mut ws = QueryWorkspace::new();
            for (q, expect) in queries.iter().zip(&cold) {
                let outcome = engine
                    .execute_with(&mut ws, &QueryRequest::new(q, algorithm.clone()).cache(true))
                    .expect("session step");
                prop_assert!(outcome.stats.cache);
                prop_assert_eq!(&print_regions(&outcome), expect);
            }
            // Replay pass: the whole trace again — every step a cache hit,
            // still bit-identical.
            for (q, expect) in queries.iter().zip(&cold) {
                let outcome = engine
                    .execute_with(&mut ws, &QueryRequest::new(q, algorithm.clone()).cache(true))
                    .expect("replay step");
                prop_assert!(outcome.stats.cache_hit, "replay must hit: {:?}", outcome.stats);
                prop_assert!(!outcome.stats.delta_prepare);
                prop_assert_eq!(&print_regions(&outcome), expect);
            }
        }
    }
}

#[test]
fn eviction_keeps_the_cache_bounded_and_lru() {
    let (network, collection) = grid_world(5, 100.0, &[0, 3, 7, 12, 18, 24]);
    let engine = LcmsrEngine::new(&network, &collection).with_cache_limits(2, usize::MAX);
    let roi = network.bounding_rect().unwrap().expanded(10.0);
    let algorithm = Algorithm::Tgen(TgenParams { alpha: 1.0 });
    let q = |delta: f64| LcmsrQuery::new(["restaurant"], delta, roi).unwrap();
    let run = |query: &LcmsrQuery| {
        engine
            .execute(&QueryRequest::new(query, algorithm.clone()).cache(true))
            .expect("cached run")
            .stats
    };
    let (q1, q2, q3) = (q(150.0), (q(250.0)), q(350.0));
    assert!(!run(&q1).cache_hit);
    assert!(!run(&q2).cache_hit);
    assert!(run(&q1).cache_hit, "both entries fit");
    // q1 is now the most recently used; inserting q3 must evict q2.
    assert!(!run(&q3).cache_hit);
    assert_eq!(engine.response_cache().len(), 2, "capacity is a hard bound");
    assert!(run(&q1).cache_hit, "recently used entry survives eviction");
    assert!(!run(&q2).cache_hit, "least recently used entry was evicted");
}

#[test]
fn epoch_bump_invalidates_cached_responses_and_sessions() {
    let (network, collection) = grid_world(5, 100.0, &[1, 6, 8, 13, 17, 22]);
    let engine = LcmsrEngine::new(&network, &collection);
    let algorithm = Algorithm::Greedy(GreedyParams::default());
    let rect_a = Rect::new(-10.0, -10.0, 310.0, 310.0);
    let rect_b = Rect::new(40.0, -10.0, 360.0, 310.0); // 84% overlap with A
    let qa = LcmsrQuery::new(["restaurant"], 300.0, rect_a).unwrap();
    let qb = LcmsrQuery::new(["restaurant"], 300.0, rect_b).unwrap();
    let mut ws = QueryWorkspace::new();
    let run = |query: &LcmsrQuery, ws: &mut QueryWorkspace| {
        engine
            .execute_with(ws, &QueryRequest::new(query, algorithm.clone()).cache(true))
            .expect("cached run")
    };

    // Warm up: A misses, B delta-prepares from A's scores, A replays as a hit.
    let cold_a = print_regions(&run(&qa, &mut ws));
    let warm_b = run(&qb, &mut ws);
    assert!(warm_b.stats.delta_prepare, "B overlaps A: delta path");
    let hit_a = run(&qa, &mut ws);
    assert!(hit_a.stats.cache_hit);

    // Declare the dataset changed: both the cached responses and the
    // workspace's session scratch are now stale.
    engine.bump_dataset_epoch();
    let stale_a = run(&qa, &mut ws);
    assert!(
        stale_a.stats.cache_stale && !stale_a.stats.cache_hit,
        "a stale entry must be recomputed, not replayed: {:?}",
        stale_a.stats
    );
    assert!(
        !stale_a.stats.delta_prepare,
        "the pre-bump session scratch must not seed a delta"
    );
    assert_eq!(
        print_regions(&stale_a),
        cold_a,
        "same dataset bits, so the recomputed answer still matches"
    );
    // The recompute re-primed cache and session at the new epoch.
    assert!(run(&qa, &mut ws).stats.cache_hit);
    assert!(run(&qb, &mut ws).stats.delta_prepare);
    // One stale lookup per pre-bump entry: A's (the recompute above) and B's
    // (evicted when its post-bump delta re-query consulted the cache).
    assert_eq!(engine.response_cache().stale(), 2);
}

/// The deprecated `run*` shims are documented as routing through `execute`;
/// their answers must therefore be bit-identical to the unified API's (the
/// shims add no code path of their own to drift).
#[test]
#[allow(deprecated)]
fn deprecated_shims_answer_exactly_like_execute() {
    let (network, collection) = grid_world(5, 100.0, &[0, 2, 9, 11, 14, 20, 23]);
    let engine = LcmsrEngine::new(&network, &collection);
    let roi = network.bounding_rect().unwrap().expanded(10.0);
    let queries: Vec<LcmsrQuery> = (1..=6)
        .map(|i| LcmsrQuery::new(["restaurant"], i as f64 * 90.0, roi).unwrap())
        .collect();
    for algorithm in [
        Algorithm::Tgen(TgenParams { alpha: 1.0 }),
        Algorithm::Greedy(GreedyParams::default()),
    ] {
        for query in &queries {
            let via_execute = run1(&engine, query, &algorithm).unwrap();
            let shim = engine.run(query, &algorithm).unwrap();
            assert_eq!(shim.region, via_execute.region, "{}", algorithm.name());
            let mut ws = QueryWorkspace::new();
            let shim_ws = engine.run_with(&mut ws, query, &algorithm).unwrap();
            assert_eq!(shim_ws.region, via_execute.region);

            let via_topk = runk(&engine, query, &algorithm, 3).unwrap();
            let shim_topk = engine.run_topk(query, &algorithm, 3).unwrap();
            assert_eq!(shim_topk.regions, via_topk.regions);
        }
        let via_batch = batch1_with(&engine, &queries, &algorithm, 4).unwrap();
        let shim_batch = engine.run_batch(&queries, &algorithm).unwrap();
        assert_eq!(shim_batch.len(), via_batch.len());
        for (shim, expect) in shim_batch.iter().zip(&via_batch) {
            assert_eq!(shim.region, expect.region);
        }
        let via_batchk = batchk_with(&engine, &queries, &algorithm, 2, 4).unwrap();
        let shim_batchk = engine.run_topk_batch(&queries, &algorithm, 2).unwrap();
        for (shim, expect) in shim_batchk.iter().zip(&via_batchk) {
            assert_eq!(shim.regions, expect.regions);
        }
    }
}
