//! Cross-algorithm invariant property tests on small random instances.
//!
//! On instances small enough for the exact solver to enumerate, the
//! guaranteed relations between the algorithms must hold for every random
//! object placement and budget:
//!
//! * **Exact dominates every heuristic** in collected weight (it enumerates
//!   all feasible connected regions): `Exact ≥ APP`, `Exact ≥ TGEN`,
//!   `Exact ≥ Greedy`.  (No pairwise order among the heuristics themselves
//!   is a theorem — APP's (5+ε) guarantee does not place it above Greedy on
//!   a given instance — so none is asserted.)
//! * **Top-k lists are sorted and duplicate-free**: ranked by the shared
//!   quality order (scaled weight desc, weight desc, length asc) with
//!   pairwise-distinct node sets — strictness comes from distinctness: two
//!   entries may tie on measures, never on identity.
//! * **Budget feasibility**: every region any algorithm returns — single or
//!   top-k — satisfies `length ≤ Q.∆ + ε`.

use lcmsr::core::engine::{Algorithm, LcmsrEngine};
use lcmsr::core::{AppParams, GreedyParams, LcmsrQuery, TgenParams};
use lcmsr::geotext::{GeoTextObject, ObjectCollection};
use lcmsr::roadnet::{GraphBuilder, NodeId, Point, RoadNetwork};
use proptest::prelude::*;

mod common;
use common::*;

/// A `side × side` grid network (100 m blocks) hosting a restaurant at each
/// node of `restaurants` and a cafe at each node of `cafes` (both indices
/// into the row-major grid), so node weights vary across the instance.
fn grid_world(
    side: usize,
    restaurants: &[usize],
    cafes: &[usize],
) -> (RoadNetwork, ObjectCollection) {
    let spacing = 100.0;
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                b.add_edge(ids[i], ids[i + 1], spacing).unwrap();
            }
            if y + 1 < side {
                b.add_edge(ids[i], ids[i + side], spacing).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let mut objects = Vec::new();
    let mut oid = 0u64;
    for &node in restaurants {
        let p = network.point(NodeId((node % (side * side)) as u32));
        objects.push(GeoTextObject::from_keywords(
            oid,
            Point::new(p.x + 1.0, p.y + 1.0),
            ["restaurant"],
        ));
        oid += 1;
    }
    for &node in cafes {
        let p = network.point(NodeId((node % (side * side)) as u32));
        objects.push(GeoTextObject::from_keywords(
            oid,
            Point::new(p.x + 2.0, p.y + 2.0),
            ["cafe"],
        ));
        oid += 1;
    }
    let collection = ObjectCollection::build(&network, objects, 50.0).unwrap();
    (network, collection)
}

fn heuristics() -> [Algorithm; 3] {
    [
        Algorithm::Tgen(TgenParams { alpha: 0.5 }),
        Algorithm::App(AppParams::default()),
        Algorithm::Greedy(GreedyParams::default()),
    ]
}

/// Shared quality order on result regions (scaled weight desc, weight desc,
/// length asc) — the engine-facing mirror of `RegionTuple::cmp_quality`.
fn ranks_not_worse(a: &lcmsr::core::region::Region, b: &lcmsr::core::region::Region) -> bool {
    match a.scaled_weight.cmp(&b.scaled_weight) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => match a.weight.partial_cmp(&b.weight).unwrap() {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => a.length <= b.length + 1e-12,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random 4×4 instances with mixed restaurant/cafe placements: the exact
    /// optimum is an upper bound for every heuristic, every returned region
    /// is feasible, and top-k lists are sorted with distinct node sets.
    #[test]
    fn exact_bounds_heuristics_and_topk_lists_are_sound(
        restaurants in collection::btree_set(0usize..16, 1..8),
        cafes in collection::btree_set(0usize..16, 1..6),
        delta_blocks in 1usize..8,
    ) {
        let restaurants: Vec<usize> = restaurants.into_iter().collect();
        let cafes: Vec<usize> = cafes.into_iter().collect();
        let (network, collection) = grid_world(4, &restaurants, &cafes);
        let engine = LcmsrEngine::new(&network, &collection);
        let delta = delta_blocks as f64 * 100.0;
        let roi = network.bounding_rect().unwrap().expanded(10.0);
        let query = LcmsrQuery::new(["restaurant", "cafe"], delta, roi).unwrap();

        let exact = run1(&engine, &query, &Algorithm::Exact)
            .expect("16 nodes is within the exact solver's limit")
            .region
            .expect("relevant objects exist");
        prop_assert!(exact.length <= delta + 1e-9, "Exact must respect Q.∆");

        for algorithm in heuristics() {
            let result = run1(&engine, &query, &algorithm).unwrap();
            let region = result
                .region
                .unwrap_or_else(|| panic!("{} found no region", algorithm.name()));
            // Budget feasibility for the single result.
            prop_assert!(
                region.length <= delta + 1e-9,
                "{}: length {} exceeds ∆ {delta}",
                algorithm.name(),
                region.length
            );
            // The exact optimum bounds every heuristic's collected weight.
            prop_assert!(
                region.weight <= exact.weight + 1e-9,
                "{} collected {} > exact optimum {}",
                algorithm.name(),
                region.weight,
                exact.weight
            );
        }

        // Top-k soundness for all four algorithms.
        for algorithm in [
            Algorithm::Exact,
            Algorithm::Tgen(TgenParams { alpha: 0.5 }),
            Algorithm::App(AppParams::default()),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let topk = runk(&engine, &query, &algorithm, 4).unwrap();
            for r in &topk.regions {
                prop_assert!(
                    r.length <= delta + 1e-9,
                    "{} top-k region infeasible",
                    algorithm.name()
                );
                prop_assert!(!r.nodes.is_empty());
            }
            for w in topk.regions.windows(2) {
                prop_assert!(
                    ranks_not_worse(&w[0], &w[1]),
                    "{} top-k out of order: ({}, {}, {}) before ({}, {}, {})",
                    algorithm.name(),
                    w[0].scaled_weight, w[0].weight, w[0].length,
                    w[1].scaled_weight, w[1].weight, w[1].length
                );
            }
            for i in 0..topk.regions.len() {
                for j in (i + 1)..topk.regions.len() {
                    prop_assert!(
                        topk.regions[i].nodes != topk.regions[j].nodes,
                        "{} top-k returned a duplicate node set",
                        algorithm.name()
                    );
                }
            }
            // The top-k head never beats the exact single optimum.
            if let Some(head) = topk.regions.first() {
                prop_assert!(head.weight <= exact.weight + 1e-9);
            }
        }
    }

    /// The exact top-1 equals the exact single answer, and the heuristics'
    /// top-1 matches their own single answer — the shared-quality-order
    /// contract that makes `run_topk(…, 1)` a drop-in for `run`.
    #[test]
    fn top1_agrees_with_the_single_answer(
        restaurants in collection::btree_set(0usize..16, 2..8),
        delta_blocks in 1usize..6,
    ) {
        let restaurants: Vec<usize> = restaurants.into_iter().collect();
        let (network, collection) = grid_world(4, &restaurants, &[]);
        let engine = LcmsrEngine::new(&network, &collection);
        let delta = delta_blocks as f64 * 100.0;
        let roi = network.bounding_rect().unwrap().expanded(10.0);
        let query = LcmsrQuery::new(["restaurant"], delta, roi).unwrap();
        for algorithm in [
            Algorithm::Exact,
            Algorithm::Tgen(TgenParams { alpha: 0.5 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let single = run1(&engine, &query, &algorithm).unwrap().region;
            let top1 = runk(&engine, &query, &algorithm, 1).unwrap().regions;
            match (&single, top1.first()) {
                (Some(s), Some(t)) => prop_assert_eq!(s, t, "{} top-1 ≠ single", algorithm.name()),
                (None, None) => {}
                (s, t) => panic!("{}: single {s:?} vs top1 {t:?}", algorithm.name()),
            }
        }
    }
}
