//! Arena-recycling and workspace-pool correctness tests.
//!
//! The solve phase stores every region tuple's node/edge sets in a
//! `TupleArena` whose blocks are free-listed and epoch-cleared between
//! queries.  These tests drive the arena's public surface with random
//! interleavings of alloc / merge / free / reset against a shadow model (no
//! live handle may ever alias another's storage), and pin the engine's pooled
//! workspaces to the exact results of fresh Vec-free workspaces — the tier-1
//! golden fixtures (Figure-2 optimum, synthetic-dataset regions) anchor the
//! absolute values.

use lcmsr::core::arena::{IdSetHandle, TupleArena};
use lcmsr::core::engine::{Algorithm, LcmsrEngine, QueryWorkspace};
use lcmsr::core::region::RegionTuple;
use lcmsr::core::{AppParams, GreedyParams, LcmsrQuery, TgenParams};
use lcmsr::prelude::{Dataset, DatasetConfig};
use proptest::prelude::*;

mod common;
use common::*;

/// One random arena operation, drawn as raw integers and interpreted below.
type Op = (u32, u32, u32);

fn apply_ops(ops: &[Op]) {
    let mut arena = TupleArena::new();
    // Shadow model: every live handle with its expected contents.  Handles in
    // the model are single-owner by construction (merges copy), so freeing
    // any of them is legal.
    let mut live: Vec<(IdSetHandle, Vec<u32>)> = Vec::new();
    for (step, &(op, a, b)) in ops.iter().enumerate() {
        match op % 12 {
            0..=4 => {
                // Alloc a fresh strictly-sorted set of 0..6 ids.
                let len = b % 6;
                let ids: Vec<u32> = (0..len).map(|k| a % 997 + k * 5).collect();
                let h = arena.alloc(&ids);
                live.push((h, ids));
            }
            5 | 6 => {
                // Merge two disjoint live sets.
                if live.len() >= 2 {
                    let i = a as usize % live.len();
                    let j = b as usize % live.len();
                    if i != j && !arena.intersects(live[i].0, live[j].0) {
                        let h = arena.merge(live[i].0, live[j].0);
                        let mut ids = live[i].1.clone();
                        ids.extend_from_slice(&live[j].1);
                        ids.sort_unstable();
                        live.push((h, ids));
                    }
                }
            }
            7 => {
                // Insert one fresh id into a live set.
                if !live.is_empty() {
                    let i = a as usize % live.len();
                    let extra = 100_000 + b; // outside the alloc id range
                    let h = arena.insert_one(live[i].0, extra);
                    let mut ids = live[i].1.clone();
                    ids.push(extra);
                    ids.sort_unstable();
                    live.push((h, ids));
                }
            }
            8..=9 => {
                // Free a random live handle.
                if !live.is_empty() {
                    let i = a as usize % live.len();
                    let (h, _) = live.swap_remove(i);
                    arena.free(h);
                }
            }
            _ => {
                // Epoch clear ("between queries"): every handle dies at once.
                arena.reset();
                live.clear();
            }
        }
        // Every live handle must still read back exactly its own contents —
        // any free-list aliasing or bump-pointer corruption shows up here.
        for (h, expect) in &live {
            assert_eq!(
                arena.get(*h),
                expect.as_slice(),
                "live handle aliased at step {step}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved build/recycle cycles never alias live handles.
    #[test]
    fn random_alloc_free_reset_interleavings_never_alias(
        ops in collection::vec((0u32..12, 0u32..100_000, 0u32..100_000), 20..250),
    ) {
        apply_ops(&ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Region-tuple combines over a shared arena behave like owned sets: the
    /// combined tuple reads the sorted union while the sources stay intact,
    /// and discarding an unshared combine rolls its storage back fully.
    #[test]
    fn combine_and_free_round_trips(
        seeds in collection::btree_set(0u32..64, 2..10),
    ) {
        let mut arena = TupleArena::new();
        let tuples: Vec<RegionTuple> = seeds
            .iter()
            .map(|&v| RegionTuple::singleton(&mut arena, v, f64::from(v), u64::from(v)))
            .collect();
        let floor = arena.storage_len();
        let mut chain = vec![];
        let mut acc = tuples[0];
        for (i, t) in tuples.iter().enumerate().skip(1) {
            acc = acc.combine(t, i as u32, 1.0, &mut arena);
            chain.push(acc);
        }
        let expect: Vec<u32> = seeds.iter().copied().collect();
        prop_assert_eq!(acc.nodes(&arena), expect.as_slice());
        prop_assert_eq!(acc.edge_count(), seeds.len() - 1);
        for (t, &v) in tuples.iter().zip(seeds.iter()) {
            prop_assert_eq!(t.nodes(&arena), &[v]);
        }
        // Free the chain in reverse creation order: pure stack discipline must
        // return the arena to its pre-combine footprint.  (Intermediates alias
        // nothing here: each was consumed only by the next combine, which
        // copies, and the singletons stay live.)
        for t in chain.into_iter().rev() {
            t.free(&mut arena);
        }
        prop_assert_eq!(arena.storage_len(), floor, "stack-ordered frees must fully roll back");
    }
}

/// Builds a small grid world with restaurants at the given node indices.
fn grid_world(
    restaurants: &[usize],
) -> (
    lcmsr::roadnet::RoadNetwork,
    lcmsr::geotext::ObjectCollection,
) {
    use lcmsr::geotext::{GeoTextObject, ObjectCollection};
    use lcmsr::roadnet::{GraphBuilder, Point};
    let side = 5usize;
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                b.add_edge(ids[i], ids[i + 1], 100.0).unwrap();
            }
            if y + 1 < side {
                b.add_edge(ids[i], ids[i + side], 100.0).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let objects: Vec<GeoTextObject> = restaurants
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let p = network.point(lcmsr::roadnet::NodeId((node % (side * side)) as u32));
            GeoTextObject::from_keywords(i as u64, Point::new(p.x + 1.0, p.y + 1.0), ["restaurant"])
        })
        .collect();
    let collection = ObjectCollection::build(&network, objects, 100.0).unwrap();
    (network, collection)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A pooled engine answering a random interleaved query stream is
    /// bit-identical to fresh per-query workspaces for every algorithm —
    /// arena epochs and recycled builders must never leak across queries.
    #[test]
    fn pooled_workspaces_match_fresh_workspaces_on_random_instances(
        restaurants in collection::btree_set(0usize..25, 2..9),
        delta_blocks in 1usize..7,
    ) {
        let restaurants: Vec<usize> = restaurants.into_iter().collect();
        let (network, collection) = grid_world(&restaurants);
        let engine = LcmsrEngine::new(&network, &collection);
        let roi = network.bounding_rect().unwrap().expanded(10.0);
        let delta = delta_blocks as f64 * 100.0;
        let queries = [
            LcmsrQuery::new(["restaurant"], delta, roi).unwrap(),
            LcmsrQuery::new(["restaurant"], delta * 1.5, roi).unwrap(),
            LcmsrQuery::new(["bakery"], delta, roi).unwrap(),
            LcmsrQuery::new(["restaurant"], delta * 0.5, roi).unwrap(),
        ];
        let algorithms = [
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::App(AppParams::default()),
            Algorithm::Greedy(GreedyParams::default()),
        ];
        for round in 0..3 {
            for (i, query) in queries.iter().enumerate() {
                let algorithm = &algorithms[(round + i) % algorithms.len()];
                let pooled = run1(&engine, query, algorithm).unwrap();
                let fresh = run1_with(&engine, &mut QueryWorkspace::new(), query, algorithm)
                    .unwrap();
                prop_assert_eq!(pooled.region, fresh.region);
            }
        }
    }
}

/// Golden fixture on the tiny synthetic dataset: one pooled engine answering
/// the workload three times over must reproduce, bit for bit, the regions a
/// fresh engine (fresh pool, fresh arenas) computes per query.
#[test]
fn pooled_engine_is_bit_identical_on_the_synthetic_dataset() {
    let dataset = Dataset::build(DatasetConfig::tiny(7));
    let mut params = dataset.default_query_params(3);
    params.num_queries = 12;
    let queries: Vec<LcmsrQuery> = dataset
        .queries(&params)
        .into_iter()
        .map(|q| LcmsrQuery::new(q.keywords, q.delta, q.rect).unwrap())
        .collect();
    let algorithm = Algorithm::Tgen(TgenParams { alpha: 5.0 });
    let reference: Vec<_> = queries
        .iter()
        .map(|q| {
            let fresh_engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
            run1(&fresh_engine, q, &algorithm).unwrap().region
        })
        .collect();
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    for round in 0..3 {
        for (q, expect) in queries.iter().zip(&reference) {
            let got = run1(&engine, q, &algorithm).unwrap().region;
            assert_eq!(&got, expect, "round {round} diverged");
        }
    }
    assert_eq!(
        engine.workspace_pool().idle_count(),
        1,
        "the whole stream reused one pooled workspace"
    );
}
