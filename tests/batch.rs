//! Batched concurrent execution tests: `run_batch` must be a drop-in
//! replacement for a sequential loop of `run` calls — same regions, same
//! weights, same lengths, in input order — no matter how many workers execute
//! the batch, and the prepare/solve split of `RunStats` must be consistent.

use lcmsr::core::engine::{Algorithm, LcmsrEngine};
use lcmsr::core::{AppParams, GreedyParams, LcmsrQuery, TgenParams};
use lcmsr::geotext::{GeoTextObject, ObjectCollection};
use lcmsr::prelude::{Dataset, DatasetConfig};
use lcmsr::roadnet::{GraphBuilder, NodeId, Point, Rect, RoadNetwork};
use proptest::prelude::*;

mod common;
use common::*;

/// Builds a `side × side` grid road network with `spacing`-metre blocks and a
/// restaurant at each listed node (index into the row-major grid).
fn grid_world(
    side: usize,
    spacing: f64,
    restaurant_nodes: &[usize],
) -> (RoadNetwork, ObjectCollection) {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                b.add_edge(ids[i], ids[i + 1], spacing).unwrap();
            }
            if y + 1 < side {
                b.add_edge(ids[i], ids[i + side], spacing).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let objects: Vec<GeoTextObject> = restaurant_nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let p = network.point(NodeId((node % (side * side)) as u32));
            GeoTextObject::from_keywords(i as u64, Point::new(p.x + 1.0, p.y + 1.0), ["restaurant"])
        })
        .collect();
    let collection = ObjectCollection::build(&network, objects, spacing.max(50.0)).unwrap();
    (network, collection)
}

fn whole(network: &RoadNetwork) -> Rect {
    network.bounding_rect().unwrap().expanded(10.0)
}

/// Compares batched results against sequential `run` calls, demanding exact
/// equality of the regions (node sets, edge sets, bitwise weights and
/// lengths).  The batch is executed `rounds` times on the same engine, so the
/// engine's workspace pool hands the same recycled workspaces (arenas,
/// builders, epoch maps) to consecutive batches — every round must still be
/// bit-identical.
fn assert_batches_match_sequential(
    engine: &LcmsrEngine<'_>,
    queries: &[LcmsrQuery],
    algorithm: &Algorithm,
    workers: usize,
    rounds: usize,
) {
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| run1(engine, q, algorithm).expect("sequential run").region)
        .collect();
    for round in 0..rounds {
        let batched = batch1_with(engine, queries, algorithm, workers).expect("batch must succeed");
        assert_eq!(batched.len(), queries.len());
        for (i, (expect, batch_result)) in sequential.iter().zip(&batched).enumerate() {
            assert_eq!(
                expect,
                &batch_result.region,
                "{} query {i} diverged under {workers} workers in round {round}",
                algorithm.name()
            );
        }
    }
}

fn assert_batch_matches_sequential(
    engine: &LcmsrEngine<'_>,
    queries: &[LcmsrQuery],
    algorithm: &Algorithm,
    workers: usize,
) {
    assert_batches_match_sequential(engine, queries, algorithm, workers, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism under concurrency: random instances and random ∆s produce
    /// identical regions whether run sequentially or batched over 4 workers.
    #[test]
    fn batch_results_are_identical_to_sequential_runs(
        restaurants in collection::btree_set(0usize..25, 2..10),
        delta_blocks in 1usize..7,
    ) {
        let restaurants: Vec<usize> = restaurants.into_iter().collect();
        let (network, collection) = grid_world(5, 100.0, &restaurants);
        let engine = LcmsrEngine::new(&network, &collection);
        let delta = delta_blocks as f64 * 100.0;
        let roi = whole(&network);
        let sw = Rect::new(-10.0, -10.0, 210.0, 210.0);
        let queries: Vec<LcmsrQuery> = vec![
            LcmsrQuery::new(["restaurant"], delta, roi).unwrap(),
            LcmsrQuery::new(["restaurant"], delta * 0.5, roi).unwrap(),
            LcmsrQuery::new(["restaurant"], delta, sw).unwrap(),
            LcmsrQuery::new(["bakery"], delta, roi).unwrap(),
            LcmsrQuery::new(["restaurant", "bakery"], delta * 1.5, roi).unwrap(),
            LcmsrQuery::new(["restaurant"], delta * 2.0, sw).unwrap(),
        ];
        // Three consecutive batches on one engine: the workspace pool recycles
        // the workers' arenas and builders across batches, and every round
        // must stay bit-identical to the sequential reference.
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            assert_batches_match_sequential(&engine, &queries, &algorithm, 4, 3);
        }
    }
}

#[test]
fn large_batch_on_the_synthetic_dataset_matches_sequential() {
    let dataset = Dataset::build(DatasetConfig::tiny(23));
    let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
    let mut params = dataset.default_query_params(11);
    params.num_queries = 40;
    params.num_keywords = 2;
    let queries: Vec<LcmsrQuery> = dataset
        .queries(&params)
        .into_iter()
        .map(|q| LcmsrQuery::new(q.keywords, q.delta, q.rect).unwrap())
        .collect();
    assert!(
        queries.len() >= 32,
        "need a real batch, got {}",
        queries.len()
    );
    for algorithm in [
        Algorithm::Tgen(TgenParams { alpha: 5.0 }),
        Algorithm::Greedy(GreedyParams::default()),
    ] {
        for workers in [1, 3, 4, 8] {
            assert_batch_matches_sequential(&engine, &queries, &algorithm, workers);
        }
    }
}

#[test]
fn topk_batches_match_sequential_topk() {
    let (network, collection) = grid_world(5, 100.0, &[0, 1, 2, 7, 12, 18, 24]);
    let engine = LcmsrEngine::new(&network, &collection);
    let roi = whole(&network);
    let queries: Vec<LcmsrQuery> = (1..=8)
        .map(|i| LcmsrQuery::new(["restaurant"], i as f64 * 75.0, roi).unwrap())
        .collect();
    for algorithm in [
        Algorithm::App(AppParams::default()),
        Algorithm::Tgen(TgenParams { alpha: 1.0 }),
        Algorithm::Greedy(GreedyParams::default()),
    ] {
        let batched = batchk_with(&engine, &queries, &algorithm, 3, 4).unwrap();
        for (query, batch_result) in queries.iter().zip(&batched) {
            let sequential = runk(&engine, query, &algorithm, 3).unwrap();
            assert_eq!(
                sequential.regions,
                batch_result.regions,
                "{}",
                algorithm.name()
            );
        }
    }
}

#[test]
fn batch_stats_split_prepare_and_solve_consistently() {
    let (network, collection) = grid_world(5, 100.0, &[0, 1, 5, 6, 12, 17, 23]);
    let engine = LcmsrEngine::new(&network, &collection);
    let roi = whole(&network);
    let queries: Vec<LcmsrQuery> = (1..=32)
        .map(|i| LcmsrQuery::new(["restaurant"], 100.0 + (i % 6) as f64 * 80.0, roi).unwrap())
        .collect();
    let results = batch1_with(
        &engine,
        &queries,
        &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
        4,
    )
    .unwrap();
    for result in &results {
        let s = &result.stats;
        assert!(
            s.prepare_time + s.solve_time <= s.elapsed,
            "prepare {:?} + solve {:?} must not exceed elapsed {:?}",
            s.prepare_time,
            s.solve_time,
            s.elapsed
        );
        assert_eq!(
            s.queue_time,
            std::time::Duration::ZERO,
            "direct batch paths never queue"
        );
        assert_eq!(s.algorithm, "TGEN");
        assert!(s.nodes_in_region > 0);
    }
    // The one-shot paths report zero queue wait too — only a serving
    // front-end's scheduler fills queue_time in.
    let single = run1(
        &engine,
        &queries[0],
        &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
    )
    .unwrap();
    assert_eq!(single.stats.queue_time, std::time::Duration::ZERO);
    assert!(single.stats.prepare_time + single.stats.solve_time <= single.stats.elapsed);
    let topk = runk(
        &engine,
        &queries[0],
        &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
        2,
    )
    .unwrap();
    assert_eq!(topk.stats.queue_time, std::time::Duration::ZERO);
    assert!(topk.stats.prepare_time + topk.stats.solve_time <= topk.stats.elapsed);
}
